// Package reopt implements mid-query re-optimization: cardinality guards
// at materialization points, safe plan switching, and graceful degradation
// under a re-planning budget.
//
// The paper's dynamic plans defend against parameters unknown at
// compile-time; this package defends against parameters that are *wrong* at
// start-up-time — stale catalog cardinalities, skewed data under the
// uniform estimation model, applications guessing their own selectivities.
// The start-up-time choose-plan decision trusts the bound values; when the
// data disagrees, the chosen plan can be arbitrarily bad even though the
// dynamic plan still contains the right one.
//
// The remedy follows the classic mid-query re-optimization recipe
// (Kabra & DeWitt's guards, Pavlopoulou et al.'s staged switching) adapted
// to dynamic plans:
//
//  1. Guard: every materialization point (hash-join build, sort input,
//     temp-scan load) whose subtree reads exactly one base relation carries
//     the cost model's predicted cardinality band. The executor reports the
//     observed row count; a q-error beyond the tolerance trips the guard.
//  2. Spool: the rows already materialized are spooled into a temporary —
//     the work is kept, not discarded — and the observed selectivity
//     corrects the tripped predicate's binding for all later cost
//     evaluations (never for execution: predicate literals must not move).
//  3. Remedy, escalating under a budget:
//     switch — re-run the start-up decision of the surviving dynamic plan
//     under the corrected bindings and splice the temporary in place of the
//     violated base subplan;
//     re-plan — re-enter the optimizer with the temporary registered as a
//     base relation of its observed cardinality, resuming without
//     recomputing finished work;
//     degrade — budget exhausted: finish the current plan over the
//     temporary and record that re-optimization gave up.
//
// A progress watchdog (watchdog.go) guards the time axis the same way the
// bands guard the cardinality axis: a per-query deadline and a no-progress
// timeout measured in tuples advanced, both surfacing as typed qerr errors.
package reopt

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dynplan/internal/bindings"
	"dynplan/internal/catalog"
	"dynplan/internal/cost"
	"dynplan/internal/exec"
	"dynplan/internal/logical"
	"dynplan/internal/obs"
	"dynplan/internal/physical"
	"dynplan/internal/qerr"
	"dynplan/internal/runtimeopt"
	"dynplan/internal/search"
	"dynplan/internal/storage"
)

// Policy configures mid-query re-optimization for one query.
type Policy struct {
	// Query is the logical query, required for the re-plan remedy; nil
	// restricts the controller to switch and degrade.
	Query *logical.Query
	// Config is the search configuration re-planning optimizes under.
	Config search.Config
	// Params are the cost-model constants; zero value means defaults.
	Params physical.Params

	// MaxAttempts bounds how many guard trips are remedied before the
	// controller degrades to finishing the current plan (default 2).
	MaxAttempts int
	// MaxPlanningTime bounds the cumulative optimizer time re-planning may
	// spend (default 250ms); once exceeded, further trips degrade.
	MaxPlanningTime time.Duration
	// Tolerance is the q-error a band violation must exceed to trip a
	// guard (default 2): small misses are the estimation model being an
	// estimation model, not a reason to abandon a running plan.
	Tolerance float64

	// Deadline, when positive, bounds the query's total execution time.
	Deadline time.Duration
	// NoProgressTimeout, when positive, cancels the query when no tuples
	// advance for that long — the query is stuck, not slow.
	NoProgressTimeout time.Duration

	// Registry receives re-opt counters and temp-leak audit tallies; nil
	// disables.
	Registry *obs.Registry

	// Trace and Span, when set, hang a "replan" span (with its planning
	// time attributed as a wait state) off the query's re-opt stage span
	// for every re-planning pass. Nil disables.
	Trace *obs.Trace
	Span  *obs.Span
}

// withDefaults fills the zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 2
	}
	if p.MaxPlanningTime == 0 {
		p.MaxPlanningTime = 250 * time.Millisecond
	}
	if p.Tolerance == 0 {
		p.Tolerance = 2
	}
	if p.Params == (physical.Params{}) {
		p.Params = physical.DefaultParams()
	}
	return p
}

// Remedy is the controller's decision after a guard trip.
type Remedy int

const (
	// RemedyDegrade finishes the current plan over the temporary.
	RemedyDegrade Remedy = iota
	// RemedySwitch re-runs the dynamic plan's start-up decision under
	// corrected bindings.
	RemedySwitch
	// RemedyReplan re-enters the optimizer with the temporary as a base
	// relation.
	RemedyReplan
)

// String names the remedy.
func (r Remedy) String() string {
	switch r {
	case RemedySwitch:
		return "switch"
	case RemedyReplan:
		return "replan"
	default:
		return "degrade"
	}
}

// Violation is the typed error a tripped cardinality guard raises. It
// unwraps to qerr.ErrCardinalityViolation, and the executor's operator
// attribution wraps it in a qerr.OpError on the way out, so callers without
// a re-opt stage still get a fully classified failure.
type Violation struct {
	// Node is the plan node whose materialization tripped the guard.
	Node *physical.Node
	// Op and Rel attribute the violation (operator label, base relation).
	Op, Rel string
	// Observed is the materialized row count; Band the predicted interval;
	// QError the miss factor.
	Observed int
	Band     obs.BandCheck
	QError   float64
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("cardinality guard tripped at %s [%s]: observed %d rows outside predicted [%.3g, %.3g] (q-error %.3g)",
		v.Op, v.Rel, v.Observed, v.Band.Lo, v.Band.Hi, v.QError)
}

// Unwrap classifies the violation under the qerr taxonomy.
func (v *Violation) Unwrap() error { return qerr.ErrCardinalityViolation }

// tripInfo records one tripped relation: where its rows were spooled and
// what was observed.
type tripInfo struct {
	temp     string
	observed int
	rowBytes int
}

// Controller owns one query's re-optimization state: the policy and
// budget, the spooled temporaries, the per-relation trips and observed
// selectivities, and the decision trace. It is created per execution
// attempt by the pipeline's re-opt stage and must be finished exactly once
// (Finish releases the temporaries; it is idempotent). All methods are safe
// for concurrent use — guards run on the executor goroutine while the
// watchdog runs on its own.
type Controller struct {
	pol Policy
	reg *obs.Registry

	mu        sync.Mutex
	temps     map[string]*exec.Temp
	trips     map[string]tripInfo
	overrides map[string]float64
	events    []obs.ReoptEvent
	lastTrip  *Violation
	attempts  int
	planning  time.Duration
	created   int
	released  int
	stalls    int
	switched  bool
	replanned bool
	degraded  bool
	finished  bool
}

// NewController returns a controller for one query execution under pol.
func NewController(pol Policy) *Controller {
	pol = pol.withDefaults()
	return &Controller{
		pol:       pol,
		reg:       pol.Registry,
		temps:     make(map[string]*exec.Temp),
		trips:     make(map[string]tripInfo),
		overrides: make(map[string]float64),
	}
}

// emit appends an event and forwards it to the registry. Callers hold mu —
// error paths carry no ExecResult, so the registry must see every event as
// it happens, not at result-assembly time.
func (c *Controller) emit(e obs.ReoptEvent) {
	c.events = append(c.events, e)
	c.reg.RecordReopt([]obs.ReoptEvent{e})
}

// fill copies a violation's attribution into an event.
func fill(e obs.ReoptEvent, v *Violation) obs.ReoptEvent {
	if v != nil {
		e.Op, e.Rel = v.Op, v.Rel
		e.Observed = float64(v.Observed)
		e.PredictedLo, e.PredictedHi = v.Band.Lo, v.Band.Hi
		e.QError = v.QError
	}
	return e
}

// bandInfo is one guarded node's predicted band plus the handles needed to
// correct the estimate after a trip.
type bandInfo struct {
	check    obs.BandCheck
	rel      string
	variable string
	baseCard int
}

// guard implements exec.MatGuard for one plan execution.
type guard struct {
	c     *Controller
	tol   float64
	bands map[*physical.Node]bandInfo
	acc   *storage.Accountant
}

// Guard returns the cardinality guard for one execution of root: every
// node whose subtree reads exactly one base relation (temporaries excluded
// — their cardinality is observed, hence exact) is banded with the cost
// model's predicted cardinality interval under env. A degraded controller
// returns nil: the decision to finish the current plan must not be
// re-litigated by the plan it decided to finish.
func (c *Controller) Guard(model *physical.Model, env *bindings.Env, root *physical.Node, acc *storage.Accountant) exec.MatGuard {
	c.mu.Lock()
	degraded := c.degraded
	c.mu.Unlock()
	if degraded || root == nil {
		return nil
	}
	sess := model.NewSession(env)
	bands := make(map[*physical.Node]bandInfo)
	memo := make(map[*physical.Node]string)
	// relOf returns the single base relation a subtree reads, or "" when
	// the subtree is disqualified: it reads several relations, or it reads
	// a temporary (whose cardinality is observed, hence exact).
	var relOf func(n *physical.Node) string
	relOf = func(n *physical.Node) string {
		if r, ok := memo[n]; ok {
			return r
		}
		memo[n] = ""
		if n.Op == physical.TempScan {
			return ""
		}
		rel := n.Rel
		for _, ch := range n.Children {
			cr := relOf(ch)
			if cr == "" || (rel != "" && rel != cr) {
				return ""
			}
			rel = cr
		}
		memo[n] = rel
		return rel
	}
	root.Walk(func(n *physical.Node) {
		rel := relOf(n)
		if rel == "" {
			return
		}
		ev := sess.Evaluate(n)
		variable, baseCard := subplanScanInfo(n)
		bands[n] = bandInfo{
			check:    obs.BandCheck{Lo: ev.Card.Lo, Hi: ev.Card.Hi},
			rel:      rel,
			variable: variable,
			baseCard: baseCard,
		}
	})
	return &guard{c: c, tol: c.pol.Tolerance, bands: bands, acc: acc}
}

// CheckMat is the executor's materialization hook: compare the observed
// row count against the node's band and trip the controller on a
// violation beyond the tolerance.
func (g *guard) CheckMat(n *physical.Node, count int, schema exec.Schema, rows func() []storage.Row) error {
	b, ok := g.bands[n]
	if !ok {
		return nil
	}
	qe, viol := b.check.Verdict(float64(count))
	if !viol || qe <= g.tol {
		return nil
	}
	return g.c.trip(n, b, count, qe, schema, rows, g.acc)
}

// trip spools the materialized rows into a temporary, corrects the
// relation's selectivity estimate, and raises the violation. A relation
// that already tripped does not trip again — its temporary already carries
// the truth, and the plan reading it is the remedy, not a new problem.
func (c *Controller) trip(n *physical.Node, b bandInfo, count int, qe float64, schema exec.Schema, rows func() []storage.Row, acc *storage.Accountant) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.degraded || c.finished {
		return nil
	}
	if _, dup := c.trips[b.rel]; dup {
		return nil
	}
	tempName := "reopt_" + b.rel
	t := storage.NewTable(tempName, n.RowBytes)
	for _, r := range rows() {
		t.Append(r)
	}
	if acc != nil {
		// Spooling is charged honestly: keeping the finished work is not
		// free, and the benchmarks must report the net benefit.
		acc.Write(int64(t.NumPages()))
	}
	c.temps[tempName] = &exec.Temp{Schema: schema, Table: t}
	c.created++
	if c.reg != nil {
		c.reg.ReoptTempsCreated.Add(1)
	}
	c.trips[b.rel] = tripInfo{temp: tempName, observed: count, rowBytes: n.RowBytes}
	if b.variable != "" && b.baseCard > 0 {
		s := float64(count) / float64(b.baseCard)
		if s > 1 {
			s = 1
		}
		c.overrides[b.variable] = s
	}
	v := &Violation{Node: n, Op: n.Label(), Rel: b.rel, Observed: count, Band: b.check, QError: qe}
	c.lastTrip = v
	return v
}

// Decide charges one attempt against the budget and picks the remedy:
// switch when a dynamic plan survives to re-activate, re-plan when the
// logical query is available, degrade when neither — or when the budget
// (attempts or cumulative planning time) is exhausted.
func (c *Controller) Decide(v *Violation, canSwitch, canReplan bool) Remedy {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts++
	c.emit(fill(obs.ReoptEvent{Stage: "violation", Attempt: c.attempts}, v))
	if c.attempts > c.pol.MaxAttempts || c.planning > c.pol.MaxPlanningTime {
		return RemedyDegrade
	}
	if canSwitch {
		return RemedySwitch
	}
	if canReplan {
		return RemedyReplan
	}
	return RemedyDegrade
}

// NoteSwitch records that the switch remedy was taken.
func (c *Controller) NoteSwitch(v *Violation, note string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.switched = true
	e := fill(obs.ReoptEvent{Stage: "switch", Attempt: c.attempts, Note: note}, v)
	c.emit(e)
}

// Replan re-enters the optimizer with every tripped relation replaced by a
// derived base relation of its observed cardinality (selection already
// applied, indexes gone — a temporary has neither), then rewrites the
// fresh plan's scans of those relations into Temp-Scans over the spooled
// rows. The finished work is resumed, not recomputed.
func (c *Controller) Replan(ctx context.Context, b *bindings.Bindings) (*physical.Node, cost.Cost, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, cost.Cost{}, fmt.Errorf("reopt: replanning aborted: %w", qerr.FromContext(context.Cause(ctx)))
	}
	if c.pol.Query == nil {
		return nil, cost.Cost{}, fmt.Errorf("reopt: replanning requires the logical query")
	}
	start := time.Now()
	var sp *obs.Span
	if c.pol.Trace != nil {
		sp = c.pol.Trace.Start(c.pol.Span, "replan", obs.SpanReplan)
	}
	dq, err := c.deriveQuery()
	if err != nil {
		sp.End()
		return nil, cost.Cost{}, err
	}
	corrected := c.CorrectBindings(b)
	res, err := runtimeopt.OptimizeRuntime(dq, corrected, c.pol.Config)
	elapsed := time.Since(start)
	sp.AddWait(obs.WaitReplanPlanning, elapsed.Nanoseconds())
	sp.End()
	c.mu.Lock()
	c.planning += elapsed
	c.mu.Unlock()
	if err != nil {
		return nil, cost.Cost{}, fmt.Errorf("reopt: re-optimization failed: %w", err)
	}
	sess := physical.NewModel(c.pol.Params).NewSession(corrected.Env())
	forced := c.rewriteScans(resolveChoose(res.Plan, sess))
	c.mu.Lock()
	c.replanned = true
	e := fill(obs.ReoptEvent{
		Stage:         "replan",
		Attempt:       c.attempts,
		PlanningNanos: elapsed.Nanoseconds(),
		Note:          fmt.Sprintf("re-optimized with %d temp(s) as base relations", len(c.trips)),
	}, c.lastTrip)
	c.emit(e)
	c.mu.Unlock()
	return forced, res.Cost, nil
}

// deriveQuery clones the logical query with every tripped relation replaced
// by a derived relation of the observed cardinality. The derived relation
// keeps the original name — the temporary's schema columns are qualified
// with it — but drops the selection predicate (already applied in the
// spooled rows) and the B-tree flags (a temporary has no indexes), so the
// optimizer can only plan a sequential read of the truth.
func (c *Controller) deriveQuery() (*logical.Query, error) {
	c.mu.Lock()
	trips := make(map[string]tripInfo, len(c.trips))
	for k, v := range c.trips {
		trips[k] = v
	}
	c.mu.Unlock()
	src := c.pol.Query
	dq := &logical.Query{
		Rels:  make([]logical.QRel, len(src.Rels)),
		Edges: make([]logical.JoinEdge, len(src.Edges)),
	}
	attrMap := make(map[*catalog.Attribute]*catalog.Attribute)
	for i, qr := range src.Rels {
		ti, tripped := trips[qr.Rel.Name]
		if !tripped {
			dq.Rels[i] = qr
			continue
		}
		attrs := make([]*catalog.Attribute, len(qr.Rel.Attrs))
		for j, a := range qr.Rel.Attrs {
			na := catalog.NewAttribute(a.Name, a.DomainSize, false)
			attrs[j] = na
			attrMap[a] = na
		}
		nr := catalog.NewRelation(qr.Rel.Name, ti.observed, qr.Rel.RecordBytes, attrs...)
		dq.Rels[i] = logical.QRel{Rel: nr}
	}
	for i, e := range src.Edges {
		ne := e
		if na, ok := attrMap[e.LeftAttr]; ok {
			ne.LeftAttr = na
		}
		if na, ok := attrMap[e.RightAttr]; ok {
			ne.RightAttr = na
		}
		dq.Edges[i] = ne
	}
	if err := dq.Validate(); err != nil {
		return nil, fmt.Errorf("reopt: derived query invalid: %w", err)
	}
	return dq, nil
}

// rewriteScans redirects every scan of a tripped relation to its
// temporary. The derived relations carry no indexes, so these scans are
// sequential and unordered; no Sort wrapping is needed here — any order
// the new plan needs it plans explicitly.
func (c *Controller) rewriteScans(root *physical.Node) *physical.Node {
	c.mu.Lock()
	trips := make(map[string]tripInfo, len(c.trips))
	for k, v := range c.trips {
		trips[k] = v
	}
	c.mu.Unlock()
	replace := make(map[*physical.Node]*physical.Node)
	root.Walk(func(n *physical.Node) {
		if !n.Op.IsScan() {
			return
		}
		if ti, ok := trips[n.Rel]; ok {
			replace[n] = &physical.Node{
				Op:       physical.TempScan,
				Rel:      ti.temp,
				BaseCard: ti.observed,
				RowBytes: ti.rowBytes,
			}
		}
	})
	if len(replace) == 0 {
		return root
	}
	return substitute(root, replace)
}

// Rewrite splices the temporaries into a (re-activated or degraded) plan:
// every maximal single-relation subplan over a tripped relation is replaced
// by a Temp-Scan of its spooled rows, Sort-wrapped when the subplan
// promised an order — a temporary's row order is a materialization
// accident (hash-table flattening), never a promise.
func (c *Controller) Rewrite(root *physical.Node) *physical.Node {
	c.mu.Lock()
	trips := make(map[string]tripInfo, len(c.trips))
	for k, v := range c.trips {
		trips[k] = v
	}
	c.mu.Unlock()
	if len(trips) == 0 || root == nil {
		return root
	}
	replace := make(map[*physical.Node]*physical.Node)
	for _, base := range baseSubplans(root) {
		ti, ok := trips[baseRelation(base)]
		if !ok {
			continue
		}
		scan := &physical.Node{
			Op:       physical.TempScan,
			Rel:      ti.temp,
			BaseCard: ti.observed,
			RowBytes: ti.rowBytes,
		}
		if o := base.Ordering(); o != "" {
			replace[base] = &physical.Node{
				Op:       physical.Sort,
				Attr:     o,
				RowBytes: base.RowBytes,
				Children: []*physical.Node{scan},
			}
		} else {
			replace[base] = scan
		}
	}
	if len(replace) == 0 {
		return root
	}
	return substitute(root, replace)
}

// DegradeRoot commits to finishing the current plan over the temporaries:
// the budget is spent (or no remedy is possible), so guards are disarmed
// and the plan runs to completion.
func (c *Controller) DegradeRoot(root *physical.Node, note string) *physical.Node {
	rewritten := c.Rewrite(root)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded = true
	c.emit(fill(obs.ReoptEvent{Stage: "degrade", Attempt: c.attempts, Note: note}, c.lastTrip))
	return rewritten
}

// CorrectBindings returns b with every observed selectivity override
// applied. The result feeds cost evaluation only — start-up decisions,
// guard bands, predictions. It must never reach execution: a predicate's
// literal is selectivity × domain, and moving it would change the query's
// answer, not its plan.
func (c *Controller) CorrectBindings(b *bindings.Bindings) *bindings.Bindings {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.overrides) == 0 {
		return b
	}
	nb := bindings.NewBindings(b.Memory)
	for k, v := range b.Sel {
		nb.Sel[k] = v
	}
	for k, v := range c.overrides {
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		nb.Sel[k] = v
	}
	return nb
}

// Temps returns the controller's live temporaries, for the executor's temp
// namespace. The map is shared: trips during an attempt become visible to
// the next attempt's executor.
func (c *Controller) Temps() map[string]*exec.Temp { return c.temps }

// Finish releases every temporary. It is idempotent — the pipeline defers
// it, and every path (success, typed error, panic recovery) must release
// exactly once.
func (c *Controller) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	c.finished = true
	if n := len(c.temps); n > 0 {
		c.released += n
		if c.reg != nil {
			c.reg.ReoptTempsReleased.Add(int64(n))
		}
	}
	clear(c.temps)
}

// Account is the per-query re-optimization summary an ExecResult carries.
type Account struct {
	// Events is the decision trace, in order.
	Events []obs.ReoptEvent `json:"events,omitempty"`
	// Attempts counts guard trips the controller remedied; Switched,
	// Replanned, and Degraded record which remedies ran.
	Attempts  int  `json:"attempts"`
	Switched  bool `json:"switched,omitempty"`
	Replanned bool `json:"replanned,omitempty"`
	Degraded  bool `json:"degraded,omitempty"`
	// TempsCreated counts the spooled temporaries; PlanningNanos the
	// cumulative optimizer time re-planning spent; Stalls the watchdog's
	// no-progress trips.
	TempsCreated  int   `json:"temps_created,omitempty"`
	PlanningNanos int64 `json:"planning_ns,omitempty"`
	Stalls        int   `json:"stalls,omitempty"`
}

// Account returns the controller's summary, or nil when nothing happened —
// the common case must cost an ExecResult nothing.
func (c *Controller) Account() *Account {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 && c.attempts == 0 && c.stalls == 0 {
		return nil
	}
	return &Account{
		Events:        append([]obs.ReoptEvent(nil), c.events...),
		Attempts:      c.attempts,
		Switched:      c.switched,
		Replanned:     c.replanned,
		Degraded:      c.degraded,
		TempsCreated:  c.created,
		PlanningNanos: c.planning.Nanoseconds(),
		Stalls:        c.stalls,
	}
}

// TempBalance reports the created/released tally, for leak audits.
func (c *Controller) TempBalance() (created, released int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.created, c.released
}

// subplanScanInfo returns the host variable of the subtree's selection
// predicate (if any) and the scanned relation's unfiltered cardinality.
func subplanScanInfo(n *physical.Node) (string, int) {
	variable := ""
	baseCard := 0
	n.Walk(func(m *physical.Node) {
		if m.Var != "" {
			variable = m.Var
		}
		if m.Op.IsScan() {
			baseCard = m.BaseCard
		}
	})
	return variable, baseCard
}

// baseSubplans returns the distinct maximal subplans whose subtrees consist
// only of scans, filters, and choose-plans over a single relation — the
// units a temporary can substitute for (see internal/adaptive for the §7
// original of this decomposition).
func baseSubplans(root *physical.Node) []*physical.Node {
	var out []*physical.Node
	seen := make(map[*physical.Node]bool)
	var walk func(n *physical.Node)
	walk = func(n *physical.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if isBaseSubplan(n) {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

func isBaseSubplan(n *physical.Node) bool {
	rels := make(map[string]bool)
	return collectBase(n, rels) && len(rels) == 1
}

func collectBase(n *physical.Node, rels map[string]bool) bool {
	switch n.Op {
	case physical.FileScan, physical.BtreeScan, physical.FilterBtreeScan:
		rels[n.Rel] = true
		return true
	case physical.Filter, physical.ChoosePlan:
		for _, c := range n.Children {
			if !collectBase(c, rels) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// baseRelation returns the single relation a base subplan scans.
func baseRelation(n *physical.Node) string {
	if n.Op.IsScan() {
		return n.Rel
	}
	for _, c := range n.Children {
		if r := baseRelation(c); r != "" {
			return r
		}
	}
	return ""
}

// resolveChoose reduces every choose-plan under n to its cheapest
// alternative under the session's environment.
func resolveChoose(n *physical.Node, sess *physical.Session) *physical.Node {
	if n.Op == physical.ChoosePlan {
		best := n.Children[0]
		bc := sess.Evaluate(best).Cost.Lo
		for _, c := range n.Children[1:] {
			if cc := sess.Evaluate(c).Cost.Lo; cc < bc {
				best, bc = c, cc
			}
		}
		return resolveChoose(best, sess)
	}
	children := make([]*physical.Node, len(n.Children))
	changed := false
	for i, c := range n.Children {
		children[i] = resolveChoose(c, sess)
		changed = changed || children[i] != c
	}
	if !changed {
		return n
	}
	clone := *n
	clone.Children = children
	return &clone
}

// substitute rebuilds the DAG with the given node replacements, cloning
// only the spine above a replacement so shared subplans stay shared.
func substitute(n *physical.Node, replace map[*physical.Node]*physical.Node) *physical.Node {
	memo := make(map[*physical.Node]*physical.Node)
	var walk func(m *physical.Node) *physical.Node
	walk = func(m *physical.Node) *physical.Node {
		if r, ok := replace[m]; ok {
			return r
		}
		if r, ok := memo[m]; ok {
			return r
		}
		children := make([]*physical.Node, len(m.Children))
		changed := false
		for i, c := range m.Children {
			children[i] = walk(c)
			changed = changed || children[i] != c
		}
		r := m
		if changed {
			clone := *m
			clone.Children = children
			r = &clone
		}
		memo[m] = r
		return r
	}
	return walk(n)
}

package reopt

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dynplan/internal/obs"
	"dynplan/internal/qerr"
	"dynplan/internal/storage"
)

// TestWatchdogCancelsStalledQuery pins the no-progress trip: an
// accountant whose tuple counter never moves must get its context
// canceled with a cause wrapping qerr.ErrNoProgress, and the stall must
// be counted.
func TestWatchdogCancelsStalledQuery(t *testing.T) {
	c := NewController(Policy{NoProgressTimeout: 20 * time.Millisecond})
	acc := &storage.Accountant{}
	ctx, stop := c.StartWatchdog(context.Background(), acc)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a stalled accountant")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, qerr.ErrNoProgress) {
		t.Errorf("cancellation cause = %v, want ErrNoProgress", cause)
	}
	if acct := c.Account(); acct == nil || acct.Stalls != 1 {
		t.Errorf("account after stall: %+v, want Stalls=1", acct)
	}
}

// TestWatchdogToleratesProgress pins the inverse: tuples that keep
// advancing — however slowly in wall time — must never trip the watchdog.
func TestWatchdogToleratesProgress(t *testing.T) {
	c := NewController(Policy{NoProgressTimeout: 60 * time.Millisecond})
	acc := &storage.Accountant{}
	ctx, stop := c.StartWatchdog(context.Background(), acc)
	defer stop()
	for i := 0; i < 10; i++ {
		acc.Tuples(1)
		time.Sleep(15 * time.Millisecond)
		if ctx.Err() != nil {
			t.Fatalf("watchdog fired despite progress: %v", context.Cause(ctx))
		}
	}
	stop()
	if acct := c.Account(); acct != nil && acct.Stalls != 0 {
		t.Errorf("stalls counted on a progressing query: %+v", acct)
	}
}

// TestWatchdogStopIdempotent pins the shutdown contract: stop must be
// callable more than once, and after it returns the goroutine is gone
// (the chaos soak asserts the global goroutine count; this pins the unit
// behavior).
func TestWatchdogStopIdempotent(t *testing.T) {
	c := NewController(Policy{NoProgressTimeout: time.Hour})
	ctx, stop := c.StartWatchdog(context.Background(), &storage.Accountant{})
	stop()
	stop()
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) {
		t.Errorf("stopped watchdog context cause = %v, want Canceled", cause)
	}
}

// TestWatchdogDisabled pins the zero-cost path: without a timeout (or
// without an accountant) the parent context is returned untouched.
func TestWatchdogDisabled(t *testing.T) {
	c := NewController(Policy{})
	parent := context.Background()
	ctx, stop := c.StartWatchdog(parent, &storage.Accountant{})
	if ctx != parent {
		t.Error("disabled watchdog wrapped the context")
	}
	stop()
	ctx, stop = NewController(Policy{NoProgressTimeout: time.Second}).StartWatchdog(parent, nil)
	if ctx != parent {
		t.Error("watchdog without an accountant wrapped the context")
	}
	stop()
}

// TestDeadlineCause pins the typed deadline: the expired context's cause
// must wrap qerr.ErrDeadlineExceeded, and a zero deadline must return the
// context unchanged.
func TestDeadlineCause(t *testing.T) {
	c := NewController(Policy{Deadline: 10 * time.Millisecond})
	ctx, cancel := c.WithDeadline(context.Background())
	defer cancel()
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, qerr.ErrDeadlineExceeded) {
		t.Errorf("deadline cause = %v, want ErrDeadlineExceeded", cause)
	}
	parent := context.Background()
	ctx2, cancel2 := NewController(Policy{}).WithDeadline(parent)
	defer cancel2()
	if ctx2 != parent {
		t.Error("zero deadline wrapped the context")
	}
}

// TestReplanCanceledContext pins cancellation during re-planning: a
// canceled context aborts Replan with a typed error before any optimizer
// work runs.
func TestReplanCanceledContext(t *testing.T) {
	c := NewController(Policy{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Replan(ctx, nil)
	if err == nil || !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("Replan on canceled ctx = %v, want ErrCanceled", err)
	}
}

// TestReplanRequiresQuery pins the remedy precondition.
func TestReplanRequiresQuery(t *testing.T) {
	c := NewController(Policy{})
	if _, _, err := c.Replan(context.Background(), nil); err == nil {
		t.Fatal("Replan without a query succeeded")
	}
}

// TestDecideBudget pins the escalation ladder: within budget the
// controller prefers switch over re-plan over degrade; past MaxAttempts
// every trip degrades.
func TestDecideBudget(t *testing.T) {
	c := NewController(Policy{MaxAttempts: 1})
	v := &Violation{Op: "Sort", Rel: "R", Observed: 10, Band: obs.BandCheck{Lo: 1, Hi: 2}, QError: 5}
	if r := c.Decide(v, true, true); r != RemedySwitch {
		t.Errorf("first trip = %v, want switch", r)
	}
	if r := c.Decide(v, true, true); r != RemedyDegrade {
		t.Errorf("trip past MaxAttempts = %v, want degrade", r)
	}

	c = NewController(Policy{MaxAttempts: 3})
	if r := c.Decide(v, false, true); r != RemedyReplan {
		t.Errorf("no module = %v, want replan", r)
	}
	if r := c.Decide(v, false, false); r != RemedyDegrade {
		t.Errorf("no remedy available = %v, want degrade", r)
	}
}

// TestDecidePlanningTimeBudget pins the second budget axis: once the
// cumulative optimizer time exceeds MaxPlanningTime, trips degrade even
// with attempts to spare.
func TestDecidePlanningTimeBudget(t *testing.T) {
	c := NewController(Policy{MaxAttempts: 10, MaxPlanningTime: time.Nanosecond})
	c.mu.Lock()
	c.planning = time.Second
	c.mu.Unlock()
	v := &Violation{Op: "Sort", Rel: "R", QError: 5}
	if r := c.Decide(v, true, true); r != RemedyDegrade {
		t.Errorf("over planning budget = %v, want degrade", r)
	}
}

// TestFinishIdempotent pins the release contract the leak audit depends
// on: however many times Finish runs, each temporary is released exactly
// once.
func TestFinishIdempotent(t *testing.T) {
	reg := obs.NewRegistry(4)
	c := NewController(Policy{Registry: reg})
	c.mu.Lock()
	c.temps["reopt_R"] = nil
	c.created = 1
	c.mu.Unlock()
	reg.ReoptTempsCreated.Add(1)
	c.Finish()
	c.Finish()
	created, released := c.TempBalance()
	if created != 1 || released != 1 {
		t.Errorf("balance = (%d, %d), want (1, 1)", created, released)
	}
	if got := reg.ReoptTempsReleased.Load(); got != 1 {
		t.Errorf("registry released = %d, want 1", got)
	}
}

// TestViolationTyped pins the error taxonomy: a violation matches
// qerr.ErrCardinalityViolation through errors.Is and renders its
// attribution.
func TestViolationTyped(t *testing.T) {
	v := &Violation{Op: "Hash-Join", Rel: "R", Observed: 100, Band: obs.BandCheck{Lo: 10, Hi: 20}, QError: 5}
	if !errors.Is(v, qerr.ErrCardinalityViolation) {
		t.Error("violation does not match ErrCardinalityViolation")
	}
	msg := v.Error()
	for _, want := range []string{"Hash-Join", "R", "100"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q misses %q", msg, want)
		}
	}
}

// TestAccountNilWhenIdle pins the common-case cost: a controller that
// never tripped returns a nil account.
func TestAccountNilWhenIdle(t *testing.T) {
	c := NewController(Policy{})
	if acct := c.Account(); acct != nil {
		t.Errorf("idle controller account = %+v, want nil", acct)
	}
}

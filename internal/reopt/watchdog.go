package reopt

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dynplan/internal/qerr"
	"dynplan/internal/storage"
)

// WithDeadline applies the policy's per-query deadline to ctx. The cause
// wraps qerr.ErrDeadlineExceeded, so the executor's cancellation check
// surfaces a typed error without any extra classification. A zero deadline
// returns ctx unchanged with a no-op cancel.
func (c *Controller) WithDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.pol.Deadline
	if d <= 0 {
		return ctx, func() {}
	}
	cause := fmt.Errorf("%w: mid-query deadline %v elapsed", qerr.ErrDeadlineExceeded, d)
	return context.WithDeadlineCause(ctx, time.Now().Add(d), cause)
}

// StartWatchdog starts the progress watchdog over one execution attempt:
// a goroutine polls the accountant's tuple counter (progress measured in
// tuples advanced, not wall time — a slow query advances, a stuck one does
// not) and cancels the returned context with a qerr.ErrNoProgress cause
// when no tuples advance for the policy's no-progress timeout.
//
// The returned stop function must be called when the attempt ends; it
// waits for the goroutine to exit (the chaos soak asserts stable goroutine
// counts) and is safe to call more than once. A zero timeout returns the
// parent unchanged with a no-op stop.
func (c *Controller) StartWatchdog(parent context.Context, acc *storage.Accountant) (context.Context, func()) {
	timeout := c.pol.NoProgressTimeout
	if timeout <= 0 || acc == nil {
		return parent, func() {}
	}
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancelCause(parent)
	poll := timeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		last := acc.TupleOps()
		lastChange := time.Now()
		for {
			select {
			case <-stopCh:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if cur := acc.TupleOps(); cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				c.noteStall()
				cancel(fmt.Errorf("%w: no tuples advanced in %v", qerr.ErrNoProgress, timeout))
				return
			}
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
		cancel(context.Canceled)
	}
	return ctx, stop
}

// noteStall counts one watchdog trip.
func (c *Controller) noteStall() {
	c.mu.Lock()
	c.stalls++
	c.mu.Unlock()
	c.reg.RecordWatchdogStall()
}

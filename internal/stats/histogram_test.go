package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynplan/internal/storage"
)

func TestEmptyHistogram(t *testing.T) {
	h, err := FromValues(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 0 {
		t.Errorf("Rows = %d", h.Rows())
	}
	if got := h.SelectivityLE(100); got != 0 {
		t.Errorf("empty selectivity = %g", got)
	}
}

func TestBucketCountValidation(t *testing.T) {
	if _, err := FromValues([]int64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	tab := storage.NewTable("t", 512)
	tab.Append(storage.Row{1})
	if _, err := Build(tab, 0, -1); err == nil {
		t.Error("negative buckets accepted")
	}
	if _, err := Build(tab, 5, 4); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestUniformEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 10000)
	for i := range values {
		values[i] = int64(rng.Intn(1000))
	}
	h, err := FromValues(values, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []float64{100, 250, 500, 900} {
		want := limit / 1000
		got := h.SelectivityLE(limit)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("uniform: limit %g -> %g, want ≈%g", limit, got, want)
		}
	}
}

// TestSkewedEstimates: the point of histograms — under heavy skew the
// estimate tracks the data, where the uniform assumption is far off.
func TestSkewedEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const domain = 1000
	values := make([]int64, 20000)
	for i := range values {
		u := rng.Float64()
		values[i] = int64(u * u * u * domain) // selectivity of "v < t" is (t/domain)^(1/3)
	}
	h, err := FromValues(values, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []float64{10, 100, 500} {
		want := math.Cbrt(limit / domain)
		got := h.SelectivityLE(limit)
		uniform := limit / domain
		if math.Abs(got-want) > 0.05 {
			t.Errorf("skewed: limit %g -> %g, want ≈%g", limit, got, want)
		}
		if math.Abs(got-want) >= math.Abs(uniform-want) {
			t.Errorf("limit %g: histogram (%g) no better than uniform (%g) against truth %g",
				limit, got, uniform, want)
		}
	}
}

// TestEstimateAgainstExactCount is the property test: the histogram
// estimate is within one bucket depth of the exact count, the equi-depth
// error bound.
func TestEstimateAgainstExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, bucketSeed uint8) bool {
		rng.Seed(seed)
		n := 100 + rng.Intn(2000)
		buckets := 4 + int(bucketSeed%29)
		values := make([]int64, n)
		for i := range values {
			// Mixed distribution: uniform + clusters + duplicates.
			switch rng.Intn(3) {
			case 0:
				values[i] = int64(rng.Intn(500))
			case 1:
				values[i] = int64(200 + rng.Intn(10))
			default:
				values[i] = 42
			}
		}
		h, err := FromValues(values, buckets)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			limit := rng.Float64() * 600
			exact := 0
			for _, v := range values {
				if float64(v) < limit {
					exact++
				}
			}
			est := h.SelectivityLE(limit) * float64(n)
			// Equi-depth error bound: at most ~2 bucket depths (duplicates
			// can straddle bounds).
			tolerance := 2*float64(n)/float64(buckets) + 2
			if math.Abs(est-float64(exact)) > tolerance {
				t.Logf("n=%d buckets=%d limit=%g exact=%d est=%g tol=%g",
					n, buckets, limit, exact, est, tolerance)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelectivityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	values := make([]int64, 5000)
	for i := range values {
		values[i] = int64(rng.Intn(300))
	}
	h, err := FromValues(values, 16)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for limit := -10.0; limit <= 320; limit += 1.7 {
		got := h.SelectivityLE(limit)
		if got < prev-1e-12 {
			t.Fatalf("selectivity decreased at limit %g: %g < %g", limit, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("selectivity %g out of range", got)
		}
		prev = got
	}
	if h.SelectivityLE(float64(h.Min)) != 0 {
		t.Error("limit at minimum must select nothing (strict predicate)")
	}
	if h.SelectivityLE(float64(h.Max)+1) != 1 {
		t.Error("limit above maximum must select everything")
	}
}

func TestBuildFromTable(t *testing.T) {
	tab := storage.NewTable("t", 512)
	for i := 0; i < 1000; i++ {
		tab.Append(storage.Row{int64(i % 100), int64(i)})
	}
	h, err := Build(tab, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 1000 || h.Min != 0 || h.Max != 99 {
		t.Errorf("histogram = %s", h)
	}
	if got := h.SelectivityLE(50); math.Abs(got-0.5) > 0.06 {
		t.Errorf("SelectivityLE(50) = %g", got)
	}
}

func TestAnalyzer(t *testing.T) {
	tab := storage.NewTable("t", 512)
	for i := 0; i < 100; i++ {
		tab.Append(storage.Row{int64(i)})
	}
	h, err := Analyzer{}.Analyze(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() == 0 || h.Rows() != 100 {
		t.Errorf("analyzer histogram = %s", h)
	}
}

func TestHistogramString(t *testing.T) {
	h, err := FromValues([]int64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := h.String(); s == "" {
		t.Error("empty String")
	}
}

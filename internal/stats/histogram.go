// Package stats provides data-derived statistics: equi-depth histograms
// over attribute values and the selectivity estimates they imply.
//
// The paper's prototype estimates selection selectivities from uniform
// value distributions (§6) and points at selectivity estimation error
// [IoC91, Chr84] as the remaining uncertainty source (§7). This package
// supplies the standard remedy — histograms built from the data by an
// ANALYZE pass — so that:
//
//   - literal predicates get distribution-aware estimates instead of the
//     uniform value ÷ domain ratio;
//   - the experiments can quantify how far uniform estimates drift from
//     the truth under skew, the error the adaptive executor
//     (internal/adaptive) is designed to absorb at run-time.
//
// Histograms here are equi-depth (equal row counts per bucket), the
// variant that bounds the estimation error of range predicates.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dynplan/internal/storage"
)

// Histogram is an equi-depth histogram over one integer attribute.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i; buckets span
	// (bounds[i-1], bounds[i]], with the first bucket starting at Min.
	bounds []int64
	// depth is the number of rows per bucket (the last bucket may hold
	// fewer).
	depth int
	// rows is the total number of rows.
	rows int
	// Min and Max are the observed extremes.
	Min, Max int64
}

// Build constructs an equi-depth histogram with the given bucket count
// over column attrIdx of the table. Building reads the data without
// charging simulated I/O (ANALYZE runs outside the measured query path,
// like index construction).
func Build(t *storage.Table, attrIdx, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: bucket count %d < 1", buckets)
	}
	var values []int64
	for page := int32(0); ; page++ {
		any := false
		for slot := int32(0); ; slot++ {
			row, err := t.Get(storage.RID{Page: page, Slot: slot})
			if err != nil {
				break
			}
			any = true
			if attrIdx < 0 || attrIdx >= len(row) {
				return nil, fmt.Errorf("stats: attribute index %d out of range for width %d", attrIdx, len(row))
			}
			values = append(values, row[attrIdx])
		}
		if !any {
			break
		}
	}
	return FromValues(values, buckets)
}

// FromValues builds the histogram from a value sample directly.
func FromValues(values []int64, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: bucket count %d < 1", buckets)
	}
	if len(values) == 0 {
		return &Histogram{rows: 0}, nil
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := &Histogram{
		rows: len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
	h.depth = (len(sorted) + buckets - 1) / buckets
	if h.depth < 1 {
		h.depth = 1
	}
	for i := h.depth - 1; i < len(sorted); i += h.depth {
		h.bounds = append(h.bounds, sorted[i])
	}
	if h.bounds[len(h.bounds)-1] != h.Max {
		h.bounds = append(h.bounds, h.Max)
	}
	return h, nil
}

// Rows returns the number of rows the histogram describes.
func (h *Histogram) Rows() int { return h.rows }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) }

// SelectivityLE estimates the fraction of rows with value < limit (the
// strict upper-bound form the executor's range predicates use). Within a
// bucket, values are assumed uniform — the only assumption left, and the
// reason equi-depth bounds the error by one bucket's depth.
func (h *Histogram) SelectivityLE(limit float64) float64 {
	if h.rows == 0 {
		return 0
	}
	if limit <= float64(h.Min) {
		return 0
	}
	if limit > float64(h.Max) {
		return 1
	}
	// qual is the largest integer value satisfying "value < limit".
	qual := math.Ceil(limit) - 1
	covered := 0.0
	lo := float64(h.Min) - 1 // previous bucket bound (exclusive)
	for i, hi := range h.bounds {
		depth := float64(h.bucketRows(i))
		fhi := float64(hi)
		switch {
		case qual >= fhi:
			covered += depth
		case qual <= lo:
			// bucket entirely above the limit
		default:
			// Partial bucket: integers in (lo, hi] assumed uniform.
			span := fhi - lo
			if span <= 0 {
				span = 1
			}
			covered += depth * (qual - lo) / span
		}
		lo = fhi
	}
	sel := covered / float64(h.rows)
	if sel < 0 {
		return 0
	}
	if sel > 1 {
		return 1
	}
	return sel
}

// bucketRows returns the exact number of rows in bucket i.
func (h *Histogram) bucketRows(i int) int {
	if i < len(h.bounds)-1 {
		return h.depth
	}
	rest := h.rows - h.depth*(len(h.bounds)-1)
	if rest <= 0 {
		// Happens when the max-padding bucket is empty of extra rows.
		return h.depth
	}
	return rest
}

// String renders the histogram compactly.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "histogram{rows=%d buckets=%d min=%d max=%d", h.rows, len(h.bounds), h.Min, h.Max)
	if len(h.bounds) <= 8 {
		fmt.Fprintf(&b, " bounds=%v", h.bounds)
	}
	b.WriteString("}")
	return b.String()
}

// Analyzer builds histograms for every indexed attribute of a store.
type Analyzer struct {
	// Buckets is the per-histogram bucket count (default 32).
	Buckets int
}

// Analyze builds histograms for the listed (table, attribute-index)
// pairs.
func (a Analyzer) Analyze(t *storage.Table, attrIdx int) (*Histogram, error) {
	buckets := a.Buckets
	if buckets <= 0 {
		buckets = 32
	}
	return Build(t, attrIdx, buckets)
}

// Package adaptive implements the paper's §7 research direction: delaying
// choose-plan decisions beyond start-up-time *into run-time* by letting
// decision procedures evaluate subplans.
//
// Start-up-time decisions (internal/plan) assume the bound selectivities
// are accurate. When they are not — stale statistics, skewed data under a
// uniform estimation model, applications guessing their own parameters —
// the chosen plan can be arbitrarily bad even though the dynamic plan
// still *contains* the right plan. The paper's proposed remedy: "handle
// inaccurate expected values by evaluating subplans as part of
// choose-plan decision procedures. When a subplan has been evaluated into
// a temporary result, its logical and physical properties (e.g., result
// cardinality) are known and therefore may contribute to decisions with
// increased confidence."
//
// Run does exactly that:
//
//  1. Every maximal base-relation subplan (the access-path alternatives
//     of one relation, possibly under a choose-plan) is resolved with the
//     supplied bindings and *executed into a temporary*; the temporary's
//     observed cardinality replaces the estimate.
//  2. Observed selectivities (observed cardinality ÷ base cardinality)
//     replace the bound selectivities, so residual predicates of
//     index-joins are corrected too.
//  3. The remaining choose-plan operators — join order, join algorithms,
//     build sides — are decided with the corrected, now-exact costs, and
//     the final plan runs over the temporaries.
//
// The materialization I/O is charged honestly (temporary writes plus the
// re-read by Temp-Scan operators), so the benefit reported by the
// experiments is net of the overhead.
package adaptive

import (
	"fmt"
	"sort"

	"dynplan/internal/bindings"
	"dynplan/internal/cost"
	"dynplan/internal/exec"
	"dynplan/internal/physical"
)

// Options configures the adaptive executor.
type Options struct {
	// Params are the cost-model constants; zero value means defaults.
	Params physical.Params
}

// Result is the outcome of an adaptive run.
type Result struct {
	// Rows and Schema are the query result.
	Rows   [][]int64
	Schema exec.Schema
	// Chosen is the final plan over the temporaries.
	Chosen *physical.Node
	// Materialized counts the subplans evaluated into temporaries, and
	// Observed maps each host variable to its observed selectivity.
	Materialized int
	Observed     map[string]float64
	// PredictedCost is the corrected cost prediction of the chosen plan
	// (excluding materialization, which has already happened).
	PredictedCost float64
}

// Run executes a dynamic plan adaptively against db under the (possibly
// inaccurate) bindings b. The plan may contain choose-plan operators; it
// must not contain Temp-Scans.
//
// The loop alternates deciding and observing, so only work the evolving
// plan would perform anyway is turned into a materialization:
//
//  1. Decide: resolve the choose-plan operators with the best current
//     knowledge (claimed selectivities, corrected by every observation
//     made so far, and observed cardinalities of temporaries).
//  2. If the decided plan consumes a base-relation access path that has
//     not been observed yet, evaluate that subplan (the cheapest variant
//     for its relation under current knowledge) into a temporary,
//     observe its cardinality, correct the relation's selectivity, and
//     go back to 1 — a plan choice made before the observation may no
//     longer be best.
//  3. Otherwise every scan input of the decided plan is a temporary
//     (index-join inners are probed, never materialized): execute it.
func Run(db *exec.DB, root *physical.Node, b *bindings.Bindings, opt Options) (*Result, error) {
	if opt.Params == (physical.Params{}) {
		opt.Params = physical.DefaultParams()
	}
	model := physical.NewModel(opt.Params)
	if err := missingBindings(root, b); err != nil {
		return nil, err
	}

	// Group the access-path variants of each relation; the materialized
	// variant per relation is the cheapest under current knowledge, and
	// all variants of a materialized relation are replaced by its
	// temporary (re-running a different access path cannot produce
	// different rows, only a different order, which Sort enforcers above
	// the temporary restore).
	byRel := make(map[string][]*physical.Node)
	for _, base := range baseSubplans(root) {
		rel := baseRelation(base)
		byRel[rel] = append(byRel[rel], base)
	}

	observedSel := make(map[string]float64)
	replace := make(map[*physical.Node]*physical.Node)
	materialized := 0

	currentEnv := func() *bindings.Env {
		env := bindings.NewEnv(cost.PointRange(b.Memory))
		for v, s := range b.Sel {
			env.Bind(v, cost.PointRange(s))
		}
		for v, s := range observedSel {
			if s > 1 {
				s = 1
			}
			env.Bind(v, cost.PointRange(s))
		}
		return env
	}

	for round := 0; ; round++ {
		if round > len(byRel)+1 {
			return nil, fmt.Errorf("adaptive: decision loop did not converge")
		}
		env := currentEnv()
		sess := model.NewSession(env)
		substituted := substitute(root, replace)
		final := resolveChoose(substituted, sess)

		// Relations whose access paths the decided plan still reads
		// directly (not through a temporary).
		pending := scanRelations(final)
		if len(pending) == 0 {
			predicted := model.Evaluate(final, env).Cost.Lo
			rows, schema, err := db.Run(final, b)
			if err != nil {
				return nil, fmt.Errorf("adaptive: executing final plan: %w", err)
			}
			out := &Result{
				Schema:        schema,
				Chosen:        final,
				Materialized:  materialized,
				Observed:      observedSel,
				PredictedCost: predicted,
			}
			out.Rows = make([][]int64, len(rows))
			for i, r := range rows {
				out.Rows[i] = r
			}
			return out, nil
		}

		// Materialize the pending relation with the cheapest access path
		// under current knowledge.
		sort.Strings(pending)
		bestRel := ""
		var bestBase *physical.Node
		bestCost := 0.0
		for _, rel := range pending {
			for _, v := range byRel[rel] {
				if c := sess.Evaluate(v).Cost.Lo; bestBase == nil || c < bestCost {
					bestRel, bestBase, bestCost = rel, v, c
				}
			}
		}
		if bestBase == nil {
			return nil, fmt.Errorf("adaptive: no access path found for relations %v", pending)
		}
		chosen := resolveChoose(bestBase, sess)
		temp := "tmp_" + bestRel
		_, observed, err := db.Materialize(temp, chosen, b)
		if err != nil {
			return nil, fmt.Errorf("adaptive: materializing %s: %w", temp, err)
		}
		materialized++
		scan := &physical.Node{
			Op:       physical.TempScan,
			Rel:      temp,
			Attr:     qualifiedOrder(chosen),
			BaseCard: observed,
			RowBytes: bestBase.RowBytes,
		}
		for _, v := range byRel[bestRel] {
			// An ordered access-path variant promises a sort order the
			// temporary may not have; restore it with a Sort over the
			// temporary so merge joins above stay correct.
			if o := v.Ordering(); o != "" && o != scan.Attr {
				replace[v] = &physical.Node{
					Op:       physical.Sort,
					Attr:     o,
					RowBytes: v.RowBytes,
					Children: []*physical.Node{scan},
				}
			} else {
				replace[v] = scan
			}
		}
		if v, baseCard := subplanVariable(bestBase); v != "" && baseCard > 0 {
			observedSel[v] = float64(observed) / float64(baseCard)
		}
	}
}

// scanRelations returns the base relations the plan reads through scan
// operators (Temp-Scans and index-join probes excluded), deduplicated.
func scanRelations(n *physical.Node) []string {
	rels := make(map[string]bool)
	seen := make(map[*physical.Node]bool)
	var walk func(m *physical.Node)
	walk = func(m *physical.Node) {
		if seen[m] {
			return
		}
		seen[m] = true
		if m.Op.IsScan() {
			rels[m.Rel] = true
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(rels))
	for r := range rels {
		out = append(out, r)
	}
	return out
}

// baseSubplans returns the distinct maximal subplans whose subtrees touch
// exactly one base relation through scans and filters (with choose-plans
// among them). These are the units §7 materializes. Ordered sort
// enforcers above them are not included (a Sort consumes the temporary).
func baseSubplans(root *physical.Node) []*physical.Node {
	var out []*physical.Node
	seen := make(map[*physical.Node]bool)
	var walk func(n *physical.Node)
	walk = func(n *physical.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if isBaseSubplan(n) {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// isBaseSubplan reports whether n's subtree consists only of scans,
// filters, and choose-plans over a single relation.
func isBaseSubplan(n *physical.Node) bool {
	rels := make(map[string]bool)
	ok := collectBase(n, rels)
	return ok && len(rels) == 1
}

func collectBase(n *physical.Node, rels map[string]bool) bool {
	switch n.Op {
	case physical.FileScan, physical.BtreeScan, physical.FilterBtreeScan:
		rels[n.Rel] = true
		return true
	case physical.Filter, physical.ChoosePlan:
		for _, c := range n.Children {
			if !collectBase(c, rels) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// baseRelation returns the single relation a base subplan scans.
func baseRelation(n *physical.Node) string {
	if n.Op.IsScan() {
		return n.Rel
	}
	for _, c := range n.Children {
		if r := baseRelation(c); r != "" {
			return r
		}
	}
	return ""
}

// subplanVariable returns the host variable of the subplan's selection
// predicate (if any) and the base relation's unfiltered cardinality.
func subplanVariable(n *physical.Node) (string, int) {
	variable := ""
	baseCard := 0
	seen := make(map[*physical.Node]bool)
	var walk func(m *physical.Node)
	walk = func(m *physical.Node) {
		if seen[m] {
			return
		}
		seen[m] = true
		if m.Var != "" {
			variable = m.Var
		}
		if m.Op.IsScan() {
			baseCard = m.BaseCard
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return variable, baseCard
}

// qualifiedOrder returns the order a resolved subplan delivers.
func qualifiedOrder(n *physical.Node) string { return n.Ordering() }

// resolveChoose reduces every choose-plan under n to its cheapest
// alternative under the session's environment.
func resolveChoose(n *physical.Node, sess *physical.Session) *physical.Node {
	if n.Op == physical.ChoosePlan {
		best := n.Children[0]
		bc := sess.Evaluate(best).Cost.Lo
		for _, c := range n.Children[1:] {
			if cc := sess.Evaluate(c).Cost.Lo; cc < bc {
				best, bc = c, cc
			}
		}
		return resolveChoose(best, sess)
	}
	children := make([]*physical.Node, len(n.Children))
	changed := false
	for i, c := range n.Children {
		children[i] = resolveChoose(c, sess)
		changed = changed || children[i] != c
	}
	if !changed {
		return n
	}
	clone := *n
	clone.Children = children
	return &clone
}

// substitute rebuilds the DAG with the given node replacements.
func substitute(n *physical.Node, replace map[*physical.Node]*physical.Node) *physical.Node {
	memo := make(map[*physical.Node]*physical.Node)
	var walk func(m *physical.Node) *physical.Node
	walk = func(m *physical.Node) *physical.Node {
		if r, ok := replace[m]; ok {
			return r
		}
		if r, ok := memo[m]; ok {
			return r
		}
		children := make([]*physical.Node, len(m.Children))
		changed := false
		for i, c := range m.Children {
			children[i] = walk(c)
			changed = changed || children[i] != c
		}
		r := m
		if changed {
			clone := *m
			clone.Children = children
			r = &clone
		}
		memo[m] = r
		return r
	}
	return walk(n)
}

// missingBindings verifies every host variable is bound.
func missingBindings(root *physical.Node, b *bindings.Bindings) error {
	for _, v := range root.Variables() {
		if _, ok := b.Sel[v]; !ok {
			return fmt.Errorf("adaptive: host variable %q is unbound", v)
		}
	}
	return nil
}

package adaptive

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dynplan/internal/bindings"
	"dynplan/internal/btree"
	"dynplan/internal/catalog"
	"dynplan/internal/exec"
	"dynplan/internal/logical"
	"dynplan/internal/physical"
	"dynplan/internal/plan"
	"dynplan/internal/runtimeopt"
	"dynplan/internal/search"
	"dynplan/internal/storage"
	"dynplan/internal/workload"
)

func newDB(t *testing.T, w *workload.Workload, skew float64) *exec.DB {
	t.Helper()
	store := w.LoadStoreSkewed(skew)
	idx, err := w.BuildIndexes(store)
	if err != nil {
		t.Fatal(err)
	}
	return &exec.DB{Catalog: w.Catalog, Store: store, Indexes: idx, Acc: &storage.Accountant{}}
}

func chainBindings(n int, sel, mem float64) *bindings.Bindings {
	b := bindings.NewBindings(mem)
	for i := 1; i <= n; i++ {
		b.BindSelectivity(fmt.Sprintf("v%d", i), sel)
	}
	return b
}

func normalize(rows [][]int64, schema exec.Schema) string {
	cols := append([]string(nil), schema...)
	sort.Strings(cols)
	perm := make([]int, len(cols))
	for i, c := range cols {
		j, err := schema.Index(c)
		if err != nil {
			panic(err)
		}
		perm[i] = j
	}
	ss := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]int64, len(perm))
		for k, j := range perm {
			vals[k] = r[j]
		}
		ss[i] = fmt.Sprint(vals)
	}
	sort.Strings(ss)
	return strings.Join(ss, ";")
}

// TestAdaptiveMatchesStartupResult: under any data distribution, the
// adaptive run must compute exactly the same result as executing the
// start-up-chosen plan — only the plan choice may differ.
func TestAdaptiveMatchesStartupResult(t *testing.T) {
	w := workload.New(21)
	rng := rand.New(rand.NewSource(3))
	for _, skew := range []float64{1, 3} {
		for _, n := range []int{2, 3} {
			q := w.Query(n)
			dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, true)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := plan.NewModule(dyn.Plan)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 4; trial++ {
				b := chainBindings(n, 0.02+rng.Float64()*0.9, 16+rng.Float64()*96)

				db1 := newDB(t, w, skew)
				rep, err := mod.Activate(b, plan.StartupOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rows1, schema1, err := db1.Run(rep.Chosen, b)
				if err != nil {
					t.Fatal(err)
				}
				want := normalize(rowSlices(rows1), schema1)

				db2 := newDB(t, w, skew)
				res, err := Run(db2, dyn.Plan, b, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if got := normalize(res.Rows, res.Schema); got != want {
					t.Fatalf("skew=%g n=%d trial=%d: adaptive result differs\nfinal plan:\n%s",
						skew, n, trial, res.Chosen.Format())
				}
			}
		}
	}
}

func rowSlices(rows []storage.Row) [][]int64 {
	out := make([][]int64, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

// TestObservedSelectivities: under skewed data the adaptive run must
// observe selectivities near claimed^(1/skew), not the claimed values.
func TestObservedSelectivities(t *testing.T) {
	w := workload.New(22)
	db := newDB(t, w, 3)
	q := w.Query(2)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	claimed := 0.01
	b := chainBindings(2, claimed, 64)
	res, err := Run(db, dyn.Plan, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observed) == 0 {
		t.Fatal("no observed selectivities")
	}
	wantSel := workload.ActualSelectivity(claimed, 3) // ≈ 0.215
	for v, got := range res.Observed {
		if got < wantSel*0.5 || got > wantSel*1.5 {
			t.Errorf("%s: observed %g, want ≈%g (claimed %g)", v, got, wantSel, claimed)
		}
	}
	if res.Materialized == 0 {
		t.Error("nothing was materialized")
	}
}

// explosiveSetup builds a catalog where join fan-out is high (small join
// domains), so intermediate results *grow* along the chain when the
// actual selectivities exceed the claimed ones. Under such growth, a plan
// chosen with badly underestimated selectivities (an index-join chain
// fetching every intermediate row through unclustered indexes) is
// catastrophically worse than hash joins over file scans — the situation
// §7's run-time decisions repair.
func explosiveSetup(t *testing.T, nRels int, skew float64, seed int64) (*logical.Query, *exec.DB) {
	t.Helper()
	cat := catalog.New()
	const card = 800
	const joinDom = card / 5 // fan-out 5 per join at selectivity 1
	for i := 1; i <= nRels; i++ {
		rel := catalog.NewRelation(fmt.Sprintf("E%d", i), card, 512,
			catalog.NewAttribute("a", card, true),
			catalog.NewAttribute("jl", joinDom, true),
			catalog.NewAttribute("jh", joinDom, true),
		)
		if err := cat.AddRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	q := &logical.Query{}
	for i := 1; i <= nRels; i++ {
		rel := cat.MustRelation(fmt.Sprintf("E%d", i))
		q.Rels = append(q.Rels, logical.QRel{Rel: rel,
			Pred: &logical.SelPred{Attr: rel.MustAttribute("a"), Variable: fmt.Sprintf("v%d", i)}})
	}
	for i := 0; i+1 < nRels; i++ {
		q.Edges = append(q.Edges, logical.JoinEdge{Left: i, Right: i + 1,
			LeftAttr:  q.Rels[i].Rel.MustAttribute("jh"),
			RightAttr: q.Rels[i+1].Rel.MustAttribute("jl")})
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}

	// Load skewed data: the selection attribute concentrates near zero,
	// join attributes uniform.
	rng := rand.New(rand.NewSource(seed))
	store := storage.NewStore()
	for _, rel := range cat.Relations() {
		tab := storage.NewTable(rel.Name, rel.RecordBytes)
		for i := 0; i < rel.Cardinality; i++ {
			row := make(storage.Row, len(rel.Attrs))
			for j, a := range rel.Attrs {
				u := rng.Float64()
				if a.Name == "a" {
					u = pow(u, skew)
				}
				v := int64(u * float64(a.DomainSize))
				if v >= int64(a.DomainSize) {
					v = int64(a.DomainSize) - 1
				}
				row[j] = v
			}
			tab.Append(row)
		}
		store.AddTable(tab)
	}
	db := &exec.DB{Catalog: cat, Store: store, Acc: &storage.Accountant{},
		Indexes: make(map[string]map[string]*btree.Tree)}
	for _, rel := range cat.Relations() {
		tab, err := store.Table(rel.Name)
		if err != nil {
			t.Fatal(err)
		}
		db.Indexes[rel.Name] = make(map[string]*btree.Tree)
		for j, a := range rel.Attrs {
			db.Indexes[rel.Name][a.Name] = btree.Build(tab, j, btree.DefaultOrder)
		}
	}
	return q, db
}

func pow(u, e float64) float64 {
	r := u
	for i := 1; i < int(e); i++ {
		r *= u
	}
	return r
}

// TestAdaptiveBeatsStartupUnderEstimationError is the headline §7 claim:
// when the claimed selectivities are badly wrong and intermediate results
// grow, deciding the upper choose-plans with observed cardinalities
// yields substantially cheaper executions than start-up-time decisions,
// net of materialization overhead.
func TestAdaptiveBeatsStartupUnderEstimationError(t *testing.T) {
	params := physical.DefaultParams()
	seconds := func(acc *storage.Accountant) float64 {
		return acc.Seconds(params.SeqPageTime, params.RandIOTime, params.SeqPageTime, params.TupleCPUTime)
	}
	q, dbS := explosiveSetup(t, 4, 4, 1)
	_, dbA := explosiveSetup(t, 4, 4, 1) // identical data, fresh accountant

	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := plan.NewModule(dyn.Plan)
	if err != nil {
		t.Fatal(err)
	}
	claimed := 0.02 // actual ≈ 0.02^(1/4) ≈ 0.38
	b := chainBindings(4, claimed, 64)

	rep, err := mod.Activate(b, plan.StartupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rowsS, _, err := dbS.Run(rep.Chosen, b)
	if err != nil {
		t.Fatal(err)
	}
	startup := seconds(dbS.Acc)

	res, err := Run(dbA, dyn.Plan, b, Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := seconds(dbA.Acc)

	if len(res.Rows) != len(rowsS) {
		t.Fatalf("adaptive returned %d rows, startup plan %d", len(res.Rows), len(rowsS))
	}
	if adaptive >= startup {
		t.Errorf("adaptive execution (%.4gs) not cheaper than start-up decision (%.4gs) under estimation error\nstartup plan:\n%s\nadaptive plan:\n%s",
			adaptive, startup, rep.Chosen.Format(), res.Chosen.Format())
	}
	t.Logf("estimation error with growing joins: startup %.4gs, adaptive %.4gs (%.1fx)",
		startup, adaptive, startup/adaptive)
}

// TestAdaptiveOverheadBounded: when misestimation does not hurt the
// start-up plan (shrinking intermediates keep even wrong chains cheap),
// the adaptive run's extra materializations must stay within a small
// factor — the honest price of insurance.
func TestAdaptiveOverheadBounded(t *testing.T) {
	w := workload.New(23)
	params := physical.DefaultParams()
	seconds := func(acc *storage.Accountant) float64 {
		return acc.Seconds(params.SeqPageTime, params.RandIOTime, params.SeqPageTime, params.TupleCPUTime)
	}
	q := w.Query(4)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := plan.NewModule(dyn.Plan)
	if err != nil {
		t.Fatal(err)
	}
	b := chainBindings(4, 0.02, 64)

	dbS := newDB(t, w, 4)
	rep, err := mod.Activate(b, plan.StartupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dbS.Run(rep.Chosen, b); err != nil {
		t.Fatal(err)
	}
	startup := seconds(dbS.Acc)

	dbA := newDB(t, w, 4)
	if _, err := Run(dbA, dyn.Plan, b, Options{Params: params}); err != nil {
		t.Fatal(err)
	}
	adaptive := seconds(dbA.Acc)
	if adaptive > startup*2.5 {
		t.Errorf("adaptive overhead too large in the benign case: %.4gs vs %.4gs", adaptive, startup)
	}
	t.Logf("benign case: startup %.4gs, adaptive %.4gs", startup, adaptive)
}

// TestAdaptiveOverheadWhenEstimatesAccurate: with accurate estimates the
// adaptive run pays only the materialization overhead; the chosen plan's
// predicted cost must not exceed the start-up choice.
func TestAdaptiveOverheadWhenEstimatesAccurate(t *testing.T) {
	w := workload.New(24)
	q := w.Query(3)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := plan.NewModule(dyn.Plan)
	if err != nil {
		t.Fatal(err)
	}
	b := chainBindings(3, 0.3, 64)
	db := newDB(t, w, 1) // uniform: estimates accurate
	res, err := Run(db, dyn.Plan, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mod.Activate(b, plan.StartupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The corrected decision can only improve on the startup prediction
	// (temp scans are cheaper inputs than re-running the access paths).
	if res.PredictedCost > rep.ChosenCost*1.1+0.01 {
		t.Errorf("adaptive predicted %g, startup predicted %g", res.PredictedCost, rep.ChosenCost)
	}
}

func TestBaseSubplanDetection(t *testing.T) {
	w := workload.New(25)
	q := w.Query(3)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	bases := baseSubplans(dyn.Plan)
	if len(bases) < 3 {
		t.Fatalf("found %d base subplans for a 3-relation query", len(bases))
	}
	rels := make(map[string]bool)
	for _, base := range bases {
		if !isBaseSubplan(base) {
			t.Error("non-base subplan returned")
		}
		rels[baseRelation(base)] = true
	}
	for i := 1; i <= 3; i++ {
		if !rels[fmt.Sprintf("R%d", i)] {
			t.Errorf("no base subplan covers R%d", i)
		}
	}
}

func TestRunRejectsUnboundVariables(t *testing.T) {
	w := workload.New(26)
	q := w.Query(2)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t, w, 1)
	if _, err := Run(db, dyn.Plan, bindings.NewBindings(64), Options{}); err == nil {
		t.Error("unbound variables accepted")
	}
}

// TestSingleRelationAdaptive: with no joins there are no upper decisions;
// the adaptive run degenerates to materialize-and-read and must still be
// correct.
func TestSingleRelationAdaptive(t *testing.T) {
	w := workload.New(27)
	q := w.Query(1)
	dyn, err := runtimeopt.OptimizeDynamic(q, search.Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t, w, 2)
	b := chainBindings(1, 0.1, 64)
	res, err := Run(db, dyn.Plan, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int(workload.ActualSelectivity(0.1, 2) * float64(w.Catalog.MustRelation("R1").Cardinality))
	if len(res.Rows) < want/2 || len(res.Rows) > want*2 {
		t.Errorf("adaptive single-relation run returned %d rows, expected ≈%d", len(res.Rows), want)
	}
}

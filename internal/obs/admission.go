package obs

import (
	"fmt"
	"time"
)

// AdmissionStats is the resource-governor account of one governed
// execution: what the query asked for, what the grant broker actually
// gave it, how long it queued, and the governor's cumulative shed
// counters at completion. It rides on ExecResult so EXPLAIN ANALYZE and
// run records can show the contention a query ran under.
type AdmissionStats struct {
	// RequestedPages and GrantedPages are the memory grant negotiation;
	// Degraded reports GrantedPages < RequestedPages — the case where the
	// broker's pressure, not a static option, decided the start-up memory
	// binding and choose-plan resolution saw the reduced grant.
	RequestedPages float64 `json:"requested_pages"`
	GrantedPages   float64 `json:"granted_pages"`
	Degraded       bool    `json:"degraded,omitempty"`
	// QueueWaitNanos is the time spent waiting for an execution slot and a
	// memory grant before start-up processing began.
	QueueWaitNanos int64 `json:"queue_wait_ns"`
	// ShedQueueFull and ShedTimeout are the governor's cumulative
	// load-shedding counters when this execution completed.
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedTimeout   int64 `json:"shed_timeout"`
}

// Render formats the admission account as one line.
func (a *AdmissionStats) Render() string {
	if a == nil {
		return ""
	}
	s := fmt.Sprintf("admission: granted %.0f/%.0f pages, queued %v",
		a.GrantedPages, a.RequestedPages, time.Duration(a.QueueWaitNanos).Round(time.Microsecond))
	if a.Degraded {
		s += " (degraded)"
	}
	if a.ShedQueueFull+a.ShedTimeout > 0 {
		s += fmt.Sprintf("; governor shed %d (queue-full %d, timeout %d)",
			a.ShedQueueFull+a.ShedTimeout, a.ShedQueueFull, a.ShedTimeout)
	}
	return s + "\n"
}

// NewRetryTrace records one recovery decision of the resilient executor in
// the start-up decision trace: which failure class attempt n hit, how the
// executor responded, and the backoff it slept before retrying. It reuses
// ChoiceTrace so retry decisions render inline with choose-plan decisions
// in ExplainDecisions — both are run-time plan decisions.
func NewRetryTrace(attempt int, class, response string, backoff time.Duration) ChoiceTrace {
	reason := fmt.Sprintf("%s; %s", class, response)
	if backoff > 0 {
		reason += fmt.Sprintf("; backed off %v", backoff.Round(time.Microsecond))
	}
	return ChoiceTrace{
		Operator: fmt.Sprintf("Retry after attempt %d", attempt),
		Reason:   reason,
	}
}

package obs

import "context"

// The layered execution paths (governed → resilient → plain) each funnel
// into the same inner execution, so without coordination one user query
// would be recorded as several queries by the workload registry. The
// outermost recording layer marks the context; inner layers see the mark
// and record only per-execution metrics (attempts, operator aggregates),
// leaving the query-level sample and query-log entry to the outside.

type suppressKey struct{}

// SuppressRecording returns a context marked so inner execution layers
// skip query-level registry recording. Callers only pay the allocation
// when the registry is enabled.
func SuppressRecording(ctx context.Context) context.Context {
	return context.WithValue(ctx, suppressKey{}, true)
}

// Suppressed reports whether query-level recording is suppressed for this
// context.
func Suppressed(ctx context.Context) bool {
	v, _ := ctx.Value(suppressKey{}).(bool)
	return v
}

package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// This file is the end-to-end span tracer: the per-query answer to "where
// did this query's wall-clock go". Where the Collector meters operators
// and the Registry aggregates across queries, a Trace is one query's
// hierarchical timeline — a span per pipeline stage, per re-optimization
// attempt and replan, per degradation rung, and per parallel exchange
// worker — with the time a stage spent *waiting* (admission queue, grant
// negotiation, retry/worker backoff sleep, exchange blocked-on-channel,
// replan planning) attributed explicitly, so
//
//	sum(child spans) + attributed waits ≈ span duration
//
// holds at every level of the tree and unexplained wall-clock is visible
// as a span's self time.
//
// Like the Collector and the Registry, the disabled state is a nil
// *Trace: every method is safe on a nil receiver, and the pipeline's
// disabled fast path stays one pointer comparison with zero allocations
// (pinned by BenchmarkExecPipelineOverhead). The enabled path is
// allocation-frugal: spans come from a fixed arena allocated once per
// trace, and only a trace that outgrows it (deep retry/reopt cascades)
// falls back to the heap span by span.

// Span kinds, carried on every span so consumers can filter the tree
// structurally (the trace-smoke CI job extracts the stage chain by kind).
const (
	// SpanStage is one pipeline stage (Record, Admit, …, Run).
	SpanStage = "stage"
	// SpanAttempt is one re-optimization attempt under the Reopt stage.
	SpanAttempt = "attempt"
	// SpanReplan is a mid-query re-plan between two attempts.
	SpanReplan = "replan"
	// SpanRung is one degradation-ladder re-run at a narrowed DOP.
	SpanRung = "rung"
	// SpanExchange is a parallel exchange operator's open-to-close life.
	SpanExchange = "exchange"
	// SpanWorker is one exchange worker goroutine.
	SpanWorker = "worker"
)

// Wait-state kinds: the explicit attributions that close the gap between
// a span's duration and its children's.
const (
	// WaitAdmissionQueue is time spent queued for an execution slot.
	WaitAdmissionQueue = "admission-queue"
	// WaitGrant is time spent negotiating the memory grant.
	WaitGrant = "grant"
	// WaitRetryBackoff is the Retry stage's backoff sleep between attempts.
	WaitRetryBackoff = "retry-backoff"
	// WaitWorkerBackoff is an exchange worker's pause before a partition
	// retry (nominal, from the deterministic retry policy).
	WaitWorkerBackoff = "worker-backoff"
	// WaitExchangeChannel is consumer time blocked on worker batches.
	WaitExchangeChannel = "exchange-channel"
	// WaitReplanPlanning is optimizer time inside a mid-query re-plan.
	WaitReplanPlanning = "replan-planning"
)

// WaitState is one attributed wait inside a span, summed per kind.
type WaitState struct {
	Kind  string `json:"kind"`
	Nanos int64  `json:"ns"`
}

// Span is one node of a trace's tree. Offsets are nanoseconds since the
// trace started, so a serialized tree is self-contained. Concurrent marks
// spans that overlap their siblings in time (exchange operators and their
// workers); reconciliation sums only non-concurrent children, since
// concurrent ones share the parent's wall-clock rather than partitioning
// it.
type Span struct {
	Name          string      `json:"name"`
	Kind          string      `json:"kind"`
	StartNanos    int64       `json:"start_ns"`
	DurationNanos int64       `json:"duration_ns"`
	Concurrent    bool        `json:"concurrent,omitempty"`
	Waits         []WaitState `json:"waits,omitempty"`
	Children      []*Span     `json:"children,omitempty"`

	t *Trace // owning tracer; nil on a decoded or detached span
}

// traceArenaSpans sizes the per-trace span arena: enough for the deepest
// stock stack (9 stages) plus a realistic retry/reopt/parallel episode
// without touching the heap again.
const traceArenaSpans = 48

// Trace is one query's span tree under construction. All mutation goes
// through the trace's mutex, so exchange worker goroutines can open,
// annotate, and close their spans concurrently with the query goroutine.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	arena []Span
	root  *Span
	done  bool
}

// NewTrace starts an empty trace. The id should be deterministic per
// database (a sequence number), so run records and /traces cross-reference
// stably.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now(), arena: make([]Span, 0, traceArenaSpans)}
}

// ID returns the trace's identifier; empty on nil.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span under parent. A nil parent attaches to the root —
// the first span started becomes the root itself. Nil-safe: a nil trace
// returns a nil span, on which End, AddWait, and MarkConcurrent are
// no-ops, so call sites need no branches beyond the trace check they
// already make.
func (t *Trace) Start(parent *Span, name, kind string) *Span {
	if t == nil {
		return nil
	}
	now := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	var s *Span
	if len(t.arena) < cap(t.arena) {
		t.arena = t.arena[:len(t.arena)+1]
		s = &t.arena[len(t.arena)-1]
	} else {
		s = &Span{}
	}
	s.Name = name
	s.Kind = kind
	s.StartNanos = now
	s.DurationNanos = -1 // open
	s.t = t
	switch {
	case parent != nil:
		parent.Children = append(parent.Children, s)
	case t.root == nil:
		t.root = s
	default:
		t.root.Children = append(t.root.Children, s)
	}
	return s
}

// End closes the span. Idempotent: only the first End (or the trace's
// Finish) sets the duration.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	now := time.Since(s.t.start).Nanoseconds()
	s.t.mu.Lock()
	if s.DurationNanos < 0 {
		s.DurationNanos = now - s.StartNanos
	}
	s.t.mu.Unlock()
}

// AddWait attributes nanos of wait time of the given kind to the span,
// merging into an existing entry of the same kind. Non-positive waits are
// dropped (a coarse clock can measure an uncontended acquire as zero).
func (s *Span) AddWait(kind string, nanos int64) {
	if s == nil || s.t == nil || nanos <= 0 {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.Waits {
		if s.Waits[i].Kind == kind {
			s.Waits[i].Nanos += nanos
			return
		}
	}
	s.Waits = append(s.Waits, WaitState{Kind: kind, Nanos: nanos})
}

// MarkConcurrent flags the span as overlapping its siblings in time, so
// reconciliation skips it when summing children against the parent.
func (s *Span) MarkConcurrent() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.Concurrent = true
	s.t.mu.Unlock()
}

// WaitNanos sums the span's attributed waits.
func (s *Span) WaitNanos() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for _, w := range s.Waits {
		n += w.Nanos
	}
	return n
}

// ChildNanos sums the durations of the span's non-concurrent children —
// the part of this span's wall-clock its children partition among
// themselves.
func (s *Span) ChildNanos() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for _, c := range s.Children {
		if !c.Concurrent && c.DurationNanos > 0 {
			n += c.DurationNanos
		}
	}
	return n
}

// SelfNanos is the span's duration not explained by non-concurrent
// children or attributed waits: its own work (for leaves and for spans
// whose children all run concurrently, like Run over exchanges) or
// unattributed overhead (for pure wrapper spans).
func (s *Span) SelfNanos() int64 {
	if s == nil {
		return 0
	}
	return s.DurationNanos - s.ChildNanos() - s.WaitNanos()
}

// Walk visits the span and its descendants pre-order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// TraceRecord is a finished trace: the /traces payload and the form
// attached to ExecResult. Root is immutable once the record exists.
type TraceRecord struct {
	ID        string `json:"id"`
	Root      *Span  `json:"root"`
	WallNanos int64  `json:"wall_ns"`
	Error     string `json:"error,omitempty"`
}

// Finish seals the trace: any span still open (error exits unwind without
// ending their spans) is closed at the trace's final instant, and the
// tree is handed off as a TraceRecord. Finish is idempotent in effect but
// should be called once, by the pipeline entry that created the trace.
func (t *Trace) Finish(err error) *TraceRecord {
	if t == nil {
		return nil
	}
	wall := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = true
	var closeOpen func(s *Span)
	closeOpen = func(s *Span) {
		if s == nil {
			return
		}
		if s.DurationNanos < 0 {
			s.DurationNanos = wall - s.StartNanos
		}
		for _, c := range s.Children {
			closeOpen(c)
		}
	}
	closeOpen(t.root)
	rec := &TraceRecord{ID: t.id, Root: t.root, WallNanos: wall}
	if err != nil {
		rec.Error = err.Error()
	}
	return rec
}

// Unattributed sums, over every span that has non-concurrent children,
// the positive self time — the wall-clock the trace fails to attribute to
// a child span or an explicit wait. Leaves and concurrency fan-out points
// (whose self time is genuine work) are excluded, so this is the
// tracer's own accounting error, the quantity the reconciliation tests
// bound.
func (r *TraceRecord) Unattributed() int64 {
	if r == nil || r.Root == nil {
		return 0
	}
	var n int64
	r.Root.Walk(func(s *Span) {
		if s.ChildNanos() == 0 {
			return
		}
		if self := s.SelfNanos(); self > 0 {
			n += self
		}
	})
	return n
}

// Render formats the trace as an indented tree for EXPLAIN ANALYZE and
// the README transcript: one line per span with duration, self time, and
// waits, concurrent spans marked with ∥.
func (r *TraceRecord) Render() string {
	if r == nil || r.Root == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "TRACE %s wall=%s", r.ID, fmtNanos(r.WallNanos))
	if r.Error != "" {
		fmt.Fprintf(&sb, " error=%q", r.Error)
	}
	sb.WriteByte('\n')
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		sb.WriteString(strings.Repeat("  ", depth+1))
		if s.Concurrent {
			sb.WriteString("∥ ")
		}
		fmt.Fprintf(&sb, "%-10s %s", s.Name, fmtNanos(s.DurationNanos))
		if self := s.SelfNanos(); len(s.Children) > 0 && self > 0 && !onlyConcurrentChildren(s) {
			fmt.Fprintf(&sb, " (self %s)", fmtNanos(self))
		}
		for _, w := range s.Waits {
			fmt.Fprintf(&sb, " [%s %s]", w.Kind, fmtNanos(w.Nanos))
		}
		sb.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(r.Root, 0)
	return sb.String()
}

func onlyConcurrentChildren(s *Span) bool {
	for _, c := range s.Children {
		if !c.Concurrent {
			return false
		}
	}
	return len(s.Children) > 0
}

// fmtNanos renders a nanosecond count at µs resolution, the scale stage
// latencies live at in the simulator.
func fmtNanos(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.3fs", float64(ns)/float64(time.Second))
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.3fms", float64(ns)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(ns)/float64(time.Microsecond))
	}
}

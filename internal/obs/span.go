package obs

import (
	"fmt"
	"strings"
	"time"
)

// OptimizerSpan is the telemetry of one optimization run: what the search
// engine enumerated, what it pruned versus kept incomparable, what the
// memo grew to, and what the produced plan looks like. It quantifies the
// search-effort story of §3 (branch-and-bound erosion under interval
// costs) and the plan-size story of Figure 6 in one machine-readable
// structure.
type OptimizerSpan struct {
	// Goals is the number of distinct optimization goals the memo holds
	// (the memo-size metric).
	Goals int `json:"goals"`
	// Candidates is the number of candidate implementations the rules
	// fired across all goals.
	Candidates int `json:"candidates"`
	// PrunedByBound, PrunedDominated, PrunedEqual, and PrunedSampled
	// decompose the candidates discarded, by mechanism.
	PrunedByBound   int `json:"pruned_by_bound"`
	PrunedDominated int `json:"pruned_dominated"`
	PrunedEqual     int `json:"pruned_equal,omitempty"`
	PrunedSampled   int `json:"pruned_sampled,omitempty"`
	// KeptIncomparable is the number of plans retained beyond the first
	// across all goals — the survivors whose cost intervals overlapped
	// (or tied) and that choose-plan operators carry to start-up-time.
	KeptIncomparable int `json:"kept_incomparable"`
	// Comparisons is the number of interval cost comparisons performed.
	Comparisons int `json:"comparisons"`
	// ChoosePlansEmitted is the number of choose-plan operators the search
	// inserted (one per goal with >1 survivor); PlanChoosePlans is how
	// many remain reachable in the final plan DAG.
	ChoosePlansEmitted int `json:"choose_plans_emitted"`
	PlanChoosePlans    int `json:"plan_choose_plans"`
	// PlanNodes is the number of distinct operator nodes in the produced
	// plan, and EncodedAlternatives the number of complete static plans it
	// encodes — Figure 6's series.
	PlanNodes           int     `json:"plan_nodes"`
	EncodedAlternatives float64 `json:"encoded_alternatives"`
	// CostLo and CostHi are the produced plan's compile-time predicted
	// cost interval — the band (§5) the calibration layer later checks
	// observed executions against.
	CostLo float64 `json:"cost_lo,omitempty"`
	CostHi float64 `json:"cost_hi,omitempty"`
	// WallNanos is the optimization wall time.
	WallNanos int64 `json:"wall_ns"`
}

// Render formats the span as a short human-readable report.
func (s *OptimizerSpan) Render() string {
	if s == nil {
		return "optimizer span: not recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "optimizer span: %s\n", time.Duration(s.WallNanos))
	fmt.Fprintf(&b, "  memo: %d goals, %d candidates, %d comparisons\n",
		s.Goals, s.Candidates, s.Comparisons)
	fmt.Fprintf(&b, "  pruned: %d by bound, %d dominated, %d equal, %d sampled; kept incomparable: %d\n",
		s.PrunedByBound, s.PrunedDominated, s.PrunedEqual, s.PrunedSampled, s.KeptIncomparable)
	fmt.Fprintf(&b, "  plan: %d nodes, %d choose-plans (%d emitted during search), %.0f alternatives encoded\n",
		s.PlanNodes, s.PlanChoosePlans, s.ChoosePlansEmitted, s.EncodedAlternatives)
	return b.String()
}

// AbortedCost is the sentinel recorded for a choose-plan alternative whose
// cost evaluation was aborted by the start-up branch-and-bound before
// completing (it provably could not be cheapest). JSON cannot carry ±Inf
// or NaN, so traces use a negative cost instead.
const AbortedCost = -1

// ChoiceTrace records how one choose-plan operator was resolved at
// start-up-time: the alternatives it offered, the predicted cost of each
// under the activation's bindings (the interval endpoints collapse to
// points once host variables are bound), which one the decision procedure
// picked, and why.
type ChoiceTrace struct {
	// Operator is the choose-plan's label ("Choose-Plan (3 alternatives)").
	Operator string `json:"operator"`
	// Alternatives are the labels of the operators heading each branch, in
	// the plan's order.
	Alternatives []string `json:"alternatives"`
	// Costs are the predicted execution costs (seconds) evaluated for each
	// alternative; AbortedCost marks branches whose evaluation the
	// start-up branch-and-bound cut short.
	Costs []float64 `json:"costs"`
	// Picked is the index of the selected alternative.
	Picked int `json:"picked"`
	// Reason explains the selection in one line.
	Reason string `json:"reason"`
}

// NewChoice builds a ChoiceTrace with a generated reason: the picked
// branch's cost against the best rejected branch, noting aborted
// evaluations.
func NewChoice(operator string, alternatives []string, costs []float64, picked int) ChoiceTrace {
	t := ChoiceTrace{
		Operator:     operator,
		Alternatives: alternatives,
		Costs:        costs,
		Picked:       picked,
	}
	runnerUp := -1
	aborted := 0
	for i, c := range costs {
		if i == picked {
			continue
		}
		if c < 0 {
			aborted++
			continue
		}
		if runnerUp < 0 || c < costs[runnerUp] {
			runnerUp = i
		}
	}
	switch {
	case picked < len(costs) && runnerUp >= 0:
		t.Reason = fmt.Sprintf("predicted %.4gs vs runner-up %.4gs", costs[picked], costs[runnerUp])
	case picked < len(costs):
		t.Reason = fmt.Sprintf("predicted %.4gs; only completed evaluation", costs[picked])
	default:
		t.Reason = "no cost recorded"
	}
	if aborted > 0 {
		t.Reason += fmt.Sprintf(" (%d evaluation(s) aborted by bound)", aborted)
	}
	return t
}

// RenderDecisions formats a start-up decision trace, one choose-plan per
// block.
func RenderDecisions(trace []ChoiceTrace) string {
	if len(trace) == 0 {
		return "start-up decisions: none (static plan)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "start-up decisions: %d choose-plan(s) resolved\n", len(trace))
	for i, t := range trace {
		fmt.Fprintf(&b, "  [%d] %s → alternative %d: %s\n", i+1, t.Operator, t.Picked+1, t.Reason)
		for j, alt := range t.Alternatives {
			mark := " "
			if j == t.Picked {
				mark = "*"
			}
			cost := "aborted"
			if j < len(t.Costs) && t.Costs[j] >= 0 {
				cost = fmt.Sprintf("%.4gs", t.Costs[j])
			}
			fmt.Fprintf(&b, "    %s %d. %-50s %s\n", mark, j+1, alt, cost)
		}
	}
	return b.String()
}

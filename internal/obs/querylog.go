package obs

import "sync"

// DefaultQueryLogCap is the number of run records the registry's
// recent-query ring buffer retains when no capacity is configured.
const DefaultQueryLogCap = 256

// queryLog is a fixed-capacity ring buffer of run records: the /queries
// endpoint's backing store. Appends overwrite the oldest entry once the
// buffer is full, so a long soak holds memory constant.
type queryLog struct {
	mu    sync.Mutex
	buf   []*RunRecord
	next  int
	total int64
}

func (l *queryLog) init(cap_ int) {
	if cap_ <= 0 {
		cap_ = DefaultQueryLogCap
	}
	l.buf = make([]*RunRecord, 0, cap_)
}

func (l *queryLog) append(rec *RunRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.buf) == 0 {
		// Zero-value log (registry built without NewRegistry): fall back to
		// the default capacity rather than dropping records.
		l.buf = make([]*RunRecord, 0, DefaultQueryLogCap)
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.next] = rec
		l.next = (l.next + 1) % len(l.buf)
	}
	l.total++
}

// recent returns the retained records oldest-first, at most max entries
// from the newest end (all when max ≤ 0).
func (l *queryLog) recent(max int) []*RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	out := make([]*RunRecord, 0, n)
	// Oldest entry sits at l.next once the ring has wrapped.
	for i := 0; i < n; i++ {
		out = append(out, l.buf[(l.next+i)%n])
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// DefaultTraceLogCap bounds the trace ring when no capacity is
// configured. Traces are an order of magnitude heavier than run records
// (a whole span tree each), so the ring is correspondingly smaller.
const DefaultTraceLogCap = 64

// traceLog is the bounded ring buffer behind /traces, the trace-shaped
// twin of queryLog.
type traceLog struct {
	mu   sync.Mutex
	buf  []*TraceRecord
	next int
}

func (l *traceLog) init(cap_ int) {
	if cap_ <= 0 {
		cap_ = DefaultTraceLogCap
	}
	l.buf = make([]*TraceRecord, 0, cap_)
}

func (l *traceLog) append(rec *TraceRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.buf) == 0 {
		l.buf = make([]*TraceRecord, 0, DefaultTraceLogCap)
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.next] = rec
		l.next = (l.next + 1) % len(l.buf)
	}
}

func (l *traceLog) recent(max int) []*TraceRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	out := make([]*TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.buf[(l.next+i)%n])
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTraceBuildsTree(t *testing.T) {
	tr := NewTrace("t00000001")
	root := tr.Start(nil, "Record", SpanStage)
	child := tr.Start(root, "Run", SpanStage)
	child.AddWait(WaitRetryBackoff, 100)
	child.AddWait(WaitRetryBackoff, 50) // merges into the same entry
	child.AddWait(WaitGrant, 0)         // dropped: non-positive
	child.End()
	root.End()
	rec := tr.Finish(nil)

	if rec.ID != "t00000001" || rec.Root != root {
		t.Fatalf("record = %+v", rec)
	}
	if len(root.Children) != 1 || root.Children[0] != child {
		t.Fatalf("root children = %v", root.Children)
	}
	if len(child.Waits) != 1 || child.Waits[0] != (WaitState{Kind: WaitRetryBackoff, Nanos: 150}) {
		t.Fatalf("waits = %+v, want one merged retry-backoff of 150", child.Waits)
	}
	if child.WaitNanos() != 150 {
		t.Fatalf("WaitNanos = %d", child.WaitNanos())
	}
	if root.ChildNanos() != child.DurationNanos {
		t.Fatalf("ChildNanos = %d, want child duration %d", root.ChildNanos(), child.DurationNanos)
	}
}

func TestTraceFinishClosesOpenSpans(t *testing.T) {
	tr := NewTrace("t1")
	root := tr.Start(nil, "Record", SpanStage)
	open := tr.Start(root, "Run", SpanStage)
	// Neither span ended: an error unwound past them.
	rec := tr.Finish(errors.New("boom"))
	if rec.Error != "boom" {
		t.Fatalf("error = %q", rec.Error)
	}
	for _, s := range []*Span{root, open} {
		if s.DurationNanos < 0 {
			t.Fatalf("span %q still open after Finish", s.Name)
		}
		if s.StartNanos+s.DurationNanos > rec.WallNanos {
			t.Fatalf("span %q ends at %d, past wall %d", s.Name, s.StartNanos+s.DurationNanos, rec.WallNanos)
		}
	}
}

func TestTraceEndIdempotent(t *testing.T) {
	tr := NewTrace("t1")
	s := tr.Start(nil, "Run", SpanStage)
	s.End()
	d := s.DurationNanos
	s.End()
	if s.DurationNanos != d {
		t.Fatalf("second End moved the duration: %d -> %d", d, s.DurationNanos)
	}
}

func TestTraceArenaOverflow(t *testing.T) {
	// A trace deeper than the arena must keep working, heap fallback and
	// all: spans stay addressable and the tree stays intact.
	tr := NewTrace("t1")
	root := tr.Start(nil, "root", SpanStage)
	for i := 0; i < traceArenaSpans+16; i++ {
		s := tr.Start(root, fmt.Sprintf("s%d", i), SpanAttempt)
		s.End()
	}
	root.End()
	rec := tr.Finish(nil)
	if got := len(rec.Root.Children); got != traceArenaSpans+16 {
		t.Fatalf("children = %d, want %d", got, traceArenaSpans+16)
	}
	for i, c := range rec.Root.Children {
		if want := fmt.Sprintf("s%d", i); c.Name != want {
			t.Fatalf("child %d = %q, want %q (arena overflow corrupted the tree)", i, c.Name, want)
		}
	}
}

func TestNilTraceAndSpanAreSafe(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Finish(nil) != nil {
		t.Fatal("nil trace not inert")
	}
	s := tr.Start(nil, "x", SpanStage)
	if s != nil {
		t.Fatal("nil trace handed out a span")
	}
	// All span methods no-op on nil.
	s.End()
	s.AddWait(WaitGrant, 5)
	s.MarkConcurrent()
	s.Walk(func(*Span) { t.Fatal("nil span walked") })
	if s.WaitNanos() != 0 || s.ChildNanos() != 0 || s.SelfNanos() != 0 {
		t.Fatal("nil span reports time")
	}
	var rec *TraceRecord
	if rec.Unattributed() != 0 || rec.Render() != "" {
		t.Fatal("nil record not inert")
	}
}

func TestTraceConcurrentChildrenExcludedFromReconciliation(t *testing.T) {
	tr := NewTrace("t1")
	root := tr.Start(nil, "Run", SpanStage)
	ex := tr.Start(root, "gather E1", SpanExchange)
	ex.MarkConcurrent()
	for i := 0; i < 2; i++ {
		w := tr.Start(ex, fmt.Sprintf("worker-%d", i), SpanWorker)
		w.MarkConcurrent()
		w.End()
	}
	ex.End()
	root.End()
	tr.Finish(nil)
	if root.ChildNanos() != 0 {
		t.Fatalf("concurrent exchange counted as sequential child time: %d", root.ChildNanos())
	}
	if ex.ChildNanos() != 0 {
		t.Fatalf("concurrent workers counted as sequential child time: %d", ex.ChildNanos())
	}
}

func TestTraceConcurrentSpanMutation(t *testing.T) {
	// Worker goroutines open, annotate, and close spans while the query
	// goroutine keeps building the chain — the tracer's lock must keep the
	// tree consistent (run under -race in CI).
	tr := NewTrace("t1")
	root := tr.Start(nil, "Run", SpanStage)
	ex := tr.Start(root, "gather", SpanExchange)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tr.Start(ex, fmt.Sprintf("worker-%d", i), SpanWorker)
			w.MarkConcurrent()
			w.AddWait(WaitWorkerBackoff, int64(i+1))
			w.End()
		}(i)
	}
	wg.Wait()
	ex.End()
	root.End()
	rec := tr.Finish(nil)
	if len(ex.Children) != 8 {
		t.Fatalf("worker spans = %d, want 8", len(ex.Children))
	}
	names := map[string]bool{}
	rec.Root.Walk(func(s *Span) { names[s.Name] = true })
	if len(names) != 10 {
		t.Fatalf("distinct spans = %d, want 10", len(names))
	}
}

func TestTraceRecordRenderAndJSON(t *testing.T) {
	tr := NewTrace("t00000007")
	root := tr.Start(nil, "Record", SpanStage)
	run := tr.Start(root, "Run", SpanStage)
	ex := tr.Start(run, "gather E1", SpanExchange)
	ex.MarkConcurrent()
	ex.AddWait(WaitExchangeChannel, 1500)
	ex.End()
	run.End()
	root.End()
	rec := tr.Finish(nil)

	out := rec.Render()
	for _, want := range []string{"TRACE t00000007", "Record", "Run", "∥ gather E1", "[exchange-channel"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// The record round-trips through JSON with the tree intact.
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != rec.ID || back.Root == nil || len(back.Root.Children) != 1 {
		t.Fatalf("round-trip lost the tree: %+v", back)
	}
	if back.Root.Children[0].Children[0].Kind != SpanExchange {
		t.Fatalf("round-trip lost span kinds")
	}
}

func TestRegistryRecordTrace(t *testing.T) {
	r := NewRegistry(0)
	tr := NewTrace("t00000001")
	root := tr.Start(nil, "Record", SpanStage)
	run := tr.Start(root, "Run", SpanStage)
	run.End()
	root.End()
	r.RecordTrace(tr.Finish(nil))

	if got := r.Traces.Load(); got != 1 {
		t.Fatalf("traces counter = %d", got)
	}
	recent := r.RecentTraces(0)
	if len(recent) != 1 || recent[0].ID != "t00000001" {
		t.Fatalf("recent traces = %+v", recent)
	}
	for _, stage := range []string{"Record", "Run"} {
		h := r.StageLatency(stage)
		if h == nil || h.Count() != 1 {
			t.Fatalf("stage %q histogram = %+v", stage, h)
		}
	}
	snap := r.Snapshot()
	if snap.Traces != 1 {
		t.Fatalf("snapshot traces = %d", snap.Traces)
	}
	if h, ok := snap.StageLatency["Run"]; !ok || h.Count != 1 {
		t.Fatalf("snapshot stage latency = %+v", snap.StageLatency)
	}
	// Nil registry and nil record are inert.
	var nilReg *Registry
	nilReg.RecordTrace(recent[0])
	r.RecordTrace(nil)
	if got := r.Traces.Load(); got != 1 {
		t.Fatalf("nil record counted: %d", got)
	}
}

func TestTraceLogRingWrap(t *testing.T) {
	var l traceLog
	l.init(4)
	for i := 0; i < 10; i++ {
		l.append(&TraceRecord{ID: fmt.Sprintf("t%d", i)})
	}
	got := l.recent(0)
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want 4", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("t%d", 6+i); rec.ID != want {
			t.Fatalf("trace %d = %s, want %s (oldest first)", i, rec.ID, want)
		}
	}
	if newest := l.recent(2); len(newest) != 2 || newest[1].ID != "t9" {
		t.Fatalf("recent(2) = %v", newest)
	}
}

// TestQueryLogConcurrentWriters pins the ring's snapshot consistency:
// concurrent appends across the wraparound boundary must never lose the
// ring's shape — every snapshot holds exactly capacity records, each
// non-nil, and the total count matches the appends.
func TestQueryLogConcurrentWriters(t *testing.T) {
	r := NewRegistry(8)
	const writers, per = 8, 200
	var wws, rws sync.WaitGroup
	stop := make(chan struct{})
	// A reader races the writers, checking every snapshot is whole.
	rws.Add(1)
	go func() {
		defer rws.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs := r.RecentQueries(0)
			if len(recs) > 8 {
				t.Errorf("snapshot holds %d records, cap is 8", len(recs))
				return
			}
			for _, rec := range recs {
				if rec == nil {
					t.Error("snapshot holds a nil record")
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wws.Add(1)
		go func(w int) {
			defer wws.Done()
			for i := 0; i < per; i++ {
				r.LogQuery(&RunRecord{Name: fmt.Sprintf("w%d-q%d", w, i)})
			}
		}(w)
	}
	wws.Wait()
	close(stop)
	rws.Wait()
	got := r.RecentQueries(0)
	if len(got) != 8 {
		t.Fatalf("final snapshot holds %d records, want full ring of 8", len(got))
	}
	for _, rec := range got {
		if rec == nil {
			t.Fatal("final snapshot holds a nil record")
		}
	}
}

// TestHistogramQuantileBucketBoundaries pins quantiles when samples sit
// exactly on the log-bucket edges: a power-of-two sample lands in the
// bucket whose upper bound covers it, the reported quantile never
// undershoots the sample, and Quantile(1) is the exact observed max.
func TestHistogramQuantileBucketBoundaries(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 1024, 4096, 1 << 20} {
		var h Histogram
		h.Record(v)
		if q := h.Quantile(0.5); q < float64(v) {
			t.Errorf("single sample %d: p50 = %g undershoots it", v, q)
		}
		if q := h.Quantile(1); q != float64(v) {
			t.Errorf("single sample %d: Quantile(1) = %g, want exact max", v, q)
		}
	}
	// Two samples a bucket apart: p50 stays in the lower bucket, p100 is
	// the max.
	var h Histogram
	h.Record(1024) // bucket 11
	h.Record(2048) // bucket 12
	if q := h.Quantile(0.5); q < 1024 || q > 2047 {
		t.Errorf("p50 = %g, want within the 1024-sample's bucket [1024, 2047]", q)
	}
	if q := h.Quantile(1); q != 2048 {
		t.Errorf("Quantile(1) = %g, want 2048", q)
	}
}

// TestHandlerErrorPaths pins the routing contract: unknown routes 404,
// wrong methods 405 with an Allow header, and the traces endpoint
// behaves like the queries one.
func TestHandlerErrorPaths(t *testing.T) {
	reg := NewRegistry(0)
	tr := NewTrace("t00000001")
	tr.Start(nil, "Record", SpanStage).End()
	reg.RecordTrace(tr.Finish(nil))
	h := Handler(func() *Registry { return reg })

	t.Run("unknown-route-404", func(t *testing.T) {
		for _, path := range []string{"/", "/nope", "/metrics/extra"} {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
			if rr.Code != 404 {
				t.Errorf("GET %s status = %d, want 404", path, rr.Code)
			}
		}
	})
	t.Run("method-not-allowed-405", func(t *testing.T) {
		for _, path := range []string{"/metrics", "/calibration", "/queries", "/traces"} {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("POST", path, nil))
			if rr.Code != 405 {
				t.Errorf("POST %s status = %d, want 405", path, rr.Code)
			}
			if allow := rr.Header().Get("Allow"); !strings.Contains(allow, "GET") {
				t.Errorf("POST %s Allow = %q, want GET advertised", path, allow)
			}
		}
	})
	t.Run("traces-ndjson", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces?n=1", nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		var rec TraceRecord
		if err := json.Unmarshal([]byte(strings.TrimSpace(rr.Body.String())), &rec); err != nil || rec.ID != "t00000001" {
			t.Fatalf("body %q err %v", rr.Body.String(), err)
		}
	})
	t.Run("traces-bad-n", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/traces?n=x", nil))
		if rr.Code != 400 {
			t.Fatalf("status %d, want 400", rr.Code)
		}
	})
	t.Run("traces-disabled-503", func(t *testing.T) {
		off := Handler(func() *Registry { return nil })
		rr := httptest.NewRecorder()
		off.ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
		if rr.Code != 503 {
			t.Fatalf("status %d, want 503", rr.Code)
		}
	})
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file is the observability side of intra-query parallelism: the
// per-execution collector the exchange operators report into, the
// ParallelStats summary attached to an ExecResult, and the EXPLAIN
// ANALYZE `PARALLEL` rendering. Per-worker tallies are plain Counters —
// each worker runs over a private accountant, so the figures are exact,
// not sampled — and everything derived from them (skew, critical-path
// seconds) is deterministic given the plan and data.

// ExchangeStats describes one exchange operator's run: which plan
// operator it parallelized, the gather kind, and each worker's tally.
type ExchangeStats struct {
	Op  string `json:"op"`
	Rel string `json:"rel,omitempty"`
	// Kind is the exchange flavor: "gather" (unordered merge of
	// partitioned heap-scan workers), "ordered-gather" (concatenating
	// merge preserving index order), or "partition-join" (the symmetric
	// hash join's per-partition workers).
	Kind    string `json:"kind"`
	Batches int64  `json:"batches,omitempty"`
	// GatherWaitNanos is real time the consumer spent blocked on worker
	// batches — the exchange's coordination overhead. It is the one
	// wall-clock field here and is stripped from committed bench records.
	GatherWaitNanos int64      `json:"gather_wait_ns,omitempty"`
	Workers         []Counters `json:"workers"`
	// WorkerRetries counts partition re-runs the exchange's workers
	// absorbed (per-worker fault-domain retries); RetryBackoffNanos lists
	// the nominal pause before each — computed deterministically from the
	// retry policy's seed, not measured, so records stay byte-identical.
	WorkerRetries     int64   `json:"worker_retries,omitempty"`
	RetryBackoffNanos []int64 `json:"retry_backoff_ns,omitempty"`
}

// Rows returns the total rows the exchange's workers produced.
func (e ExchangeStats) Rows() int64 {
	var n int64
	for _, w := range e.Workers {
		n += w.Rows
	}
	return n
}

// Skew is the balance figure of the partitioning: the busiest worker's
// rows over the per-worker mean. 1.0 is perfect balance; an exchange
// that produced no rows reports 0.
func (e ExchangeStats) Skew() float64 {
	total := e.Rows()
	if total == 0 || len(e.Workers) == 0 {
		return 0
	}
	var max int64
	for _, w := range e.Workers {
		if w.Rows > max {
			max = w.Rows
		}
	}
	mean := float64(total) / float64(len(e.Workers))
	return float64(max) / mean
}

// WorkerSeconds converts each worker's tally to simulated seconds under
// the cost-model rates.
func (e ExchangeStats) WorkerSeconds(r CostRates) []float64 {
	out := make([]float64, len(e.Workers))
	for i, w := range e.Workers {
		out[i] = w.SimulatedSeconds(r)
	}
	return out
}

// key orders exchanges deterministically for rendering and aggregation:
// exchanges can close on concurrent worker goroutines, so recording
// order is not stable run to run.
func (e ExchangeStats) key() string {
	return e.Kind + "|" + e.Op + "|" + e.Rel
}

// ParallelExec collects exchange reports for one execution. Exchanges
// close on whatever goroutine drains them (the symmetric join closes its
// child exchanges from its distributors), so Record is mutex-guarded and
// nil-safe — a serial execution holds a nil collector and pays one
// pointer check.
type ParallelExec struct {
	mu        sync.Mutex
	exchanges []ExchangeStats
}

// Record adds one exchange's report; no-op on a nil receiver.
func (p *ParallelExec) Record(st ExchangeStats) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exchanges = append(p.exchanges, st)
}

// Stats freezes the collected reports into the summary attached to an
// ExecResult; nil on a nil receiver. The exchanges are sorted into a
// deterministic order.
func (p *ParallelExec) Stats(dop, maxDOP int, grant, partPages float64, reason string) *ParallelStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	ex := make([]ExchangeStats, len(p.exchanges))
	copy(ex, p.exchanges)
	p.mu.Unlock()
	sort.SliceStable(ex, func(i, j int) bool { return ex[i].key() < ex[j].key() })
	st := &ParallelStats{
		DOP: dop, MaxDOP: maxDOP,
		GrantPages: grant, PartitionPages: partPages,
		Reason: reason, Exchanges: ex,
	}
	for _, e := range ex {
		st.WorkerRetries += e.WorkerRetries
	}
	return st
}

// ParallelStats is the parallel-execution section of an ExecResult: the
// degree of parallelism chosen at activation, why, and every exchange's
// per-worker tallies.
type ParallelStats struct {
	// DOP is the worker count the execution ran with; 1 means the query
	// ran serial (the Reason says why).
	DOP    int `json:"dop"`
	MaxDOP int `json:"max_dop"`
	// GrantPages is the memory grant the DOP was derived from, and
	// PartitionPages each worker's share of it.
	GrantPages     float64 `json:"grant_pages"`
	PartitionPages float64 `json:"partition_pages,omitempty"`
	// Reason records the selection: "grant" (the grant funded DOP
	// workers), "grant-limited" (the grant only funded one), "cost" (the
	// cost model priced the parallel alternative higher), or "degraded"
	// (the graceful-degradation ladder capped the DOP after a fault).
	Reason    string          `json:"reason,omitempty"`
	Exchanges []ExchangeStats `json:"exchanges,omitempty"`
	// WorkerRetries is the total partition re-runs the execution's
	// exchange workers absorbed without escalating — the per-worker
	// fault-domain account; 0 means every partition ran clean first try.
	WorkerRetries int64 `json:"worker_retries,omitempty"`
}

// MaxSkew returns the worst partition skew across the exchanges.
func (s *ParallelStats) MaxSkew() float64 {
	if s == nil {
		return 0
	}
	max := 0.0
	for _, e := range s.Exchanges {
		if sk := e.Skew(); sk > max {
			max = sk
		}
	}
	return max
}

// CriticalPathSeconds prices the parallel execution under the cost
// model: start from the serial-equivalent total (the accountant's figure
// — parallelism never changes what is charged, only who charges it),
// then for each exchange replace its workers' summed seconds with the
// slowest worker's, since the workers overlap. The result is the
// simulated wall-clock analogue a speedup is measured against.
func (s *ParallelStats) CriticalPathSeconds(serialTotal float64, r CostRates) float64 {
	if s == nil {
		return serialTotal
	}
	out := serialTotal
	for _, e := range s.Exchanges {
		sum, max := 0.0, 0.0
		for _, w := range e.WorkerSeconds(r) {
			sum += w
			if w > max {
				max = w
			}
		}
		out += max - sum
	}
	if out < 0 {
		return 0
	}
	return out
}

// RenderParallel renders the PARALLEL section of EXPLAIN ANALYZE; nil
// when the execution ran without the parallel machinery.
func RenderParallel(s *ParallelStats) []string {
	if s == nil {
		return nil
	}
	head := fmt.Sprintf("PARALLEL dop=%d max-dop=%d grant=%.0f pages (reason: %s)",
		s.DOP, s.MaxDOP, s.GrantPages, s.Reason)
	if s.WorkerRetries > 0 {
		head += fmt.Sprintf(" worker-retries=%d", s.WorkerRetries)
	}
	lines := []string{head}
	for _, e := range s.Exchanges {
		rows := make([]string, len(e.Workers))
		for i, w := range e.Workers {
			rows[i] = fmt.Sprintf("%d", w.Rows)
		}
		target := e.Op
		if e.Rel != "" {
			target += "(" + e.Rel + ")"
		}
		line := fmt.Sprintf("  exchange %s %s: workers=%d rows=[%s] skew=%.2f batches=%d",
			e.Kind, target, len(e.Workers), strings.Join(rows, " "), e.Skew(), e.Batches)
		if e.WorkerRetries > 0 {
			line += fmt.Sprintf(" worker-retries=%d", e.WorkerRetries)
		}
		lines = append(lines, line)
	}
	return lines
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestAdmissionStatsRender(t *testing.T) {
	var nilStats *AdmissionStats
	if nilStats.Render() != "" {
		t.Error("nil stats render non-empty")
	}
	plain := &AdmissionStats{RequestedPages: 64, GrantedPages: 64}
	if s := plain.Render(); !strings.Contains(s, "granted 64/64 pages") || strings.Contains(s, "degraded") {
		t.Errorf("plain render = %q", s)
	}
	squeezed := &AdmissionStats{
		RequestedPages: 64,
		GrantedPages:   16,
		Degraded:       true,
		QueueWaitNanos: int64(3 * time.Millisecond),
		ShedQueueFull:  2,
		ShedTimeout:    1,
	}
	s := squeezed.Render()
	for _, want := range []string{"granted 16/64 pages", "(degraded)", "shed 3", "queue-full 2", "timeout 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("render %q lacks %q", s, want)
		}
	}
}

func TestNewRetryTrace(t *testing.T) {
	tr := NewRetryTrace(2, "transient I/O", "retrying the same plan", 750*time.Microsecond)
	if tr.Operator != "Retry after attempt 2" {
		t.Errorf("Operator = %q", tr.Operator)
	}
	for _, want := range []string{"transient I/O", "retrying the same plan", "backed off 750µs"} {
		if !strings.Contains(tr.Reason, want) {
			t.Errorf("reason %q lacks %q", tr.Reason, want)
		}
	}
	if got := NewRetryTrace(1, "c", "r", 0).Reason; strings.Contains(got, "backed off") {
		t.Errorf("zero backoff still rendered: %q", got)
	}
}

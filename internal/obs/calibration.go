package obs

// Interval calibration is the observatory's feedback loop on the paper's
// central object. The optimizer plans over cost and cardinality
// *intervals* (§5): a plan is only correct to keep if the true run-time
// figure actually lands inside its predicted [lo, hi] band. This file
// checks exactly that at the close of each metered execution — each
// operator's predicted cardinality interval against its observed row
// count, and the plan's predicted cost interval against the observed
// simulated cost — and reduces each comparison to the two standard
// calibration verdicts: the q-error (multiplicative miss factor) and the
// interval-violation bit (actual strictly outside the band).

// Prediction is the compile-time interval attached to a plan node: the
// cost model's predicted output-cardinality band, evaluated under the
// activation's bindings.
type Prediction struct {
	CardLo float64 `json:"card_lo"`
	CardHi float64 `json:"card_hi"`
}

// CalibrationVerdict is one predicted-vs-actual comparison: a cardinality
// check on a single operator, or the cost check on the whole plan.
type CalibrationVerdict struct {
	// Kind is "cardinality" for per-operator row-count checks and "cost"
	// for the plan-level simulated-cost check.
	Kind string `json:"kind"`
	// Op and Label identify the operator; Rel names the base relation it
	// reads, when it reads one — the handle that lets the observatory pin
	// a stale catalog entry to the relation that caused it.
	Op    string `json:"op"`
	Rel   string `json:"rel,omitempty"`
	Label string `json:"label,omitempty"`
	// PredictedLo and PredictedHi are the interval the optimizer promised;
	// Actual is what the execution observed.
	PredictedLo float64 `json:"predicted_lo"`
	PredictedHi float64 `json:"predicted_hi"`
	Actual      float64 `json:"actual"`
	// QError is the multiplicative factor by which Actual missed the
	// interval: 1 when inside, max(lo,1)/max(a,1) below, max(a,1)/max(hi,1)
	// above (1-floored so empty results don't divide by zero).
	QError float64 `json:"q_error"`
	// Violation is true when Actual fell strictly outside [lo, hi] — the
	// paper's correctness condition for keeping the plan is broken.
	Violation bool `json:"violation"`
}

// BandCheck is a predicted [Lo, Hi] interval together with the verdict
// logic every band comparison in the system shares: the post-run
// calibration table and the mid-query cardinality guards (internal/reopt)
// both reduce predicted-vs-actual to Verdict, so the two layers cannot
// drift apart on what counts as a violation or how badly an actual missed.
type BandCheck struct {
	Lo, Hi float64
}

// Verdict computes the interval q-error and violation bit for an actual
// value against the band, 1-flooring both sides so zero-row operators and
// zero-cost intervals stay finite: q-error is 1 when actual lands inside
// [Lo, Hi], max(Lo,1)/max(actual,1) below, max(actual,1)/max(Hi,1) above.
// An inverted band is normalized first.
func (b BandCheck) Verdict(actual float64) (qerror float64, violation bool) {
	lo, hi := b.Lo, b.Hi
	if lo > hi {
		lo, hi = hi, lo
	}
	floor := func(v float64) float64 {
		if v < 1 {
			return 1
		}
		return v
	}
	switch {
	case actual < lo:
		return floor(lo) / floor(actual), true
	case actual > hi:
		return floor(actual) / floor(hi), true
	default:
		return 1, false
	}
}

// Contains reports whether actual falls inside the band (no violation).
func (b BandCheck) Contains(actual float64) bool {
	_, viol := b.Verdict(actual)
	return !viol
}

// qError keeps the historical call shape for this file's own callers.
func qError(lo, hi, actual float64) (float64, bool) {
	return BandCheck{Lo: lo, Hi: hi}.Verdict(actual)
}

// Calibrate walks an execution's stats tree and produces the calibration
// verdicts: one cardinality verdict per distinct operator carrying a
// Prediction (also annotating the node's QError/Violation fields, so
// EXPLAIN ANALYZE can render them), plus one plan-level cost verdict when
// a predicted cost interval is supplied (planHi > 0). actualCost is the
// execution's observed simulated cost in seconds. Nil-safe on a nil tree.
func Calibrate(tree *PlanStats, planLo, planHi, actualCost float64) []CalibrationVerdict {
	if tree == nil {
		return nil
	}
	var verdicts []CalibrationVerdict
	seen := make(map[*PlanStats]bool)
	var walk func(s *PlanStats)
	walk = func(s *PlanStats) {
		if seen[s] {
			return
		}
		seen[s] = true
		if p := s.Predicted; p != nil {
			qe, viol := qError(p.CardLo, p.CardHi, float64(s.Counters.Rows))
			s.QError = qe
			s.Violation = viol
			verdicts = append(verdicts, CalibrationVerdict{
				Kind:        "cardinality",
				Op:          s.Op,
				Rel:         s.Rel,
				Label:       s.Label,
				PredictedLo: p.CardLo,
				PredictedHi: p.CardHi,
				Actual:      float64(s.Counters.Rows),
				QError:      qe,
				Violation:   viol,
			})
		}
		for _, ch := range s.Children {
			walk(ch)
		}
	}
	walk(tree)
	if planHi > 0 {
		qe, viol := qError(planLo, planHi, actualCost)
		verdicts = append(verdicts, CalibrationVerdict{
			Kind:        "cost",
			Op:          tree.Op,
			Label:       "plan",
			PredictedLo: planLo,
			PredictedHi: planHi,
			Actual:      actualCost,
			QError:      qe,
			Violation:   viol,
		})
	}
	return verdicts
}

// calibKey identifies a calibration aggregate: the verdict kind, the
// operator, and the relation it reads.
type calibKey struct {
	Kind string
	Op   string
	Rel  string
}

// CalibrationReport is the workload-level aggregate of the verdicts for
// one (kind, operator, relation) key — how often the optimizer's interval
// held and how badly it missed when it didn't.
type CalibrationReport struct {
	Kind string `json:"kind"`
	Op   string `json:"op"`
	Rel  string `json:"rel,omitempty"`
	// Observations counts verdicts folded in; Violations the subset whose
	// actual fell outside the predicted band.
	Observations int64 `json:"observations"`
	Violations   int64 `json:"violations"`
	// MaxQError and SumQError summarize the miss magnitude; LastActual and
	// the last predicted band give the most recent concrete data point.
	MaxQError float64 `json:"max_q_error"`
	SumQError float64 `json:"sum_q_error"`
	LastLo    float64 `json:"last_predicted_lo"`
	LastHi    float64 `json:"last_predicted_hi"`
	LastQ     float64 `json:"last_q_error"`
	LastVal   float64 `json:"last_actual"`
}

// observe folds one verdict into the report.
func (r *CalibrationReport) observe(v CalibrationVerdict) {
	r.Observations++
	if v.Violation {
		r.Violations++
	}
	if v.QError > r.MaxQError {
		r.MaxQError = v.QError
	}
	r.SumQError += v.QError
	r.LastLo = v.PredictedLo
	r.LastHi = v.PredictedHi
	r.LastQ = v.QError
	r.LastVal = v.Actual
}

// ViolationRate returns the fraction of observations that violated their
// interval.
func (r CalibrationReport) ViolationRate() float64 {
	if r.Observations == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Observations)
}

// MeanQError returns the average q-error across observations.
func (r CalibrationReport) MeanQError() float64 {
	if r.Observations == 0 {
		return 0
	}
	return r.SumQError / float64(r.Observations)
}

package obs

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dynplan/internal/physical"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{Opens: 1, NextCalls: 10, Rows: 9, SeqPageReads: 4, RandPageReads: 2,
		PageWrites: 1, TupleOps: 30, FaultsAbsorbed: 1, WallNanos: 100, MemBytes: 512}
	b := Counters{Opens: 2, NextCalls: 5, Rows: 4, SeqPageReads: 6, RandPageReads: 1,
		PageWrites: 2, TupleOps: 10, FaultsAbsorbed: 2, WallNanos: 50, MemBytes: 256}
	a.Add(b)
	want := Counters{Opens: 3, NextCalls: 15, Rows: 13, SeqPageReads: 10, RandPageReads: 3,
		PageWrites: 3, TupleOps: 40, FaultsAbsorbed: 3, WallNanos: 150, MemBytes: 512}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
	// MemBytes is a high-water mark: adding a larger tally widens it.
	a.Add(Counters{MemBytes: 4096})
	if a.MemBytes != 4096 {
		t.Errorf("Add should take the max MemBytes, got %d", a.MemBytes)
	}
}

func TestSimulatedSeconds(t *testing.T) {
	c := Counters{SeqPageReads: 10, RandPageReads: 4, PageWrites: 2, TupleOps: 1000}
	r := CostRates{SeqPage: 0.008, RandPage: 0.02, Write: 0.008, Tuple: 1e-5}
	got := c.SimulatedSeconds(r)
	want := 10*0.008 + 4*0.02 + 2*0.008 + 1000*1e-5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SimulatedSeconds: got %g, want %g", got, want)
	}
}

// chainPlan builds scan(R) ⋈ scan(S) ⋈ scan(T) as a physical tree.
func chainPlan() (*physical.Node, *physical.Node, *physical.Node, *physical.Node, *physical.Node) {
	r := &physical.Node{Op: physical.FileScan, Rel: "R"}
	s := &physical.Node{Op: physical.FileScan, Rel: "S"}
	tt := &physical.Node{Op: physical.FileScan, Rel: "T"}
	j1 := &physical.Node{Op: physical.HashJoin, LeftAttr: "R.j", RightAttr: "S.j", Children: []*physical.Node{r, s}}
	j2 := &physical.Node{Op: physical.HashJoin, LeftAttr: "S.k", RightAttr: "T.k", Children: []*physical.Node{j1, tt}}
	return j2, j1, r, s, tt
}

func TestCollectorTreeMirrorsPlanShape(t *testing.T) {
	root, j1, r, s, tt := chainPlan()
	c := NewCollector()
	c.StatsFor(r).Add(Counters{Rows: 100, SeqPageReads: 10})
	c.StatsFor(s).Add(Counters{Rows: 50, SeqPageReads: 5})
	c.StatsFor(tt).Add(Counters{Rows: 20, SeqPageReads: 2})
	c.StatsFor(j1).Add(Counters{Rows: 30, SeqPageReads: 15, MemBytes: 1 << 20})
	c.StatsFor(root).Add(Counters{Rows: 7, SeqPageReads: 17})

	tree := c.Tree(root)
	if tree == nil {
		t.Fatal("Tree returned nil on an enabled collector")
	}
	if tree.NodeCount() != root.CountNodes() {
		t.Errorf("stats tree has %d nodes, plan has %d", tree.NodeCount(), root.CountNodes())
	}
	// Shape: root joins (j1, T); j1 joins (R, S).
	if len(tree.Children) != 2 || len(tree.Children[0].Children) != 2 {
		t.Fatalf("stats tree does not mirror the plan shape: %+v", tree)
	}
	if tree.Counters.Rows != 7 {
		t.Errorf("root rows = %d, want 7", tree.Counters.Rows)
	}
	if got := tree.Children[0].Counters.MemBytes; got != 1<<20 {
		t.Errorf("j1 mem = %d, want %d", got, 1<<20)
	}
	if got := tree.Children[0].Children[0].Counters.Rows; got != 100 {
		t.Errorf("scan R rows = %d, want 100", got)
	}

	// Total: root's inclusive counters with tree-wide MemBytes high-water.
	total := tree.Total()
	if total.Rows != 7 || total.SeqPageReads != 17 || total.MemBytes != 1<<20 {
		t.Errorf("Total = %+v", total)
	}
}

func TestCollectorTreeSharedSubplan(t *testing.T) {
	// A DAG: the same scan feeds both join inputs. The stats tree must
	// preserve the sharing (one PlanStats node referenced twice).
	r := &physical.Node{Op: physical.FileScan, Rel: "R"}
	join := &physical.Node{Op: physical.HashJoin, LeftAttr: "R.j", RightAttr: "R.j",
		Children: []*physical.Node{r, r}}
	c := NewCollector()
	c.StatsFor(r).Add(Counters{Rows: 10})
	tree := c.Tree(join)
	if tree.Children[0] != tree.Children[1] {
		t.Error("shared plan node mapped to distinct stats nodes")
	}
	if tree.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", tree.NodeCount())
	}
}

func TestCollectorReset(t *testing.T) {
	root, _, r, _, _ := chainPlan()
	c := NewCollector()
	c.StatsFor(r).Add(Counters{Rows: 42})
	c.Reset()
	if got := c.Tree(root).Children[0].Children[0].Counters.Rows; got != 0 {
		t.Errorf("after Reset, scan rows = %d, want 0", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports Enabled")
	}
	if c.StatsFor(&physical.Node{Op: physical.FileScan, Rel: "R"}) != nil {
		t.Error("nil collector returned a counter struct")
	}
	c.Reset()
	if c.Tree(&physical.Node{Op: physical.FileScan, Rel: "R"}) != nil {
		t.Error("nil collector returned a stats tree")
	}
}

// TestDisabledCollectorAllocatesNothing pins the zero-overhead contract:
// the disabled (nil) collector's fast path performs no allocation.
func TestDisabledCollectorAllocatesNothing(t *testing.T) {
	var c *Collector
	n := &physical.Node{Op: physical.FileScan, Rel: "R"}
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Enabled() {
			t.Fatal("unreachable")
		}
		_ = c.StatsFor(n)
		_ = c.Tree(n)
		c.Reset()
	})
	if allocs != 0 {
		t.Errorf("disabled collector allocated %.1f times per run, want 0", allocs)
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	root, _, r, s, tt := chainPlan()
	c := NewCollector()
	for _, n := range []*physical.Node{root, r, s, tt} {
		c.StatsFor(n).Add(Counters{Rows: 3, SeqPageReads: 2, WallNanos: 10})
	}
	rec := &RunRecord{
		Name:  "roundtrip-test",
		Query: "R join S join T",
		Metrics: map[string]float64{
			"rows": 7, "seq-page-reads": 17,
		},
		SimCostTotal: 1.25,
		Optimizer:    &OptimizerSpan{Goals: 6, Candidates: 20, ChoosePlansEmitted: 2, PlanNodes: 5},
		Operators:    c.Tree(root),
		Decisions: []ChoiceTrace{
			NewChoice("Choose-Plan (2 alternatives)", []string{"Hash-Join", "Merge-Join"}, []float64{1.5, 2.5}, 0),
		},
	}

	name, err := rec.Filename()
	if err != nil {
		t.Fatal(err)
	}
	if name != "BENCH_roundtrip-test.json" {
		t.Errorf("Filename = %q", name)
	}

	dir := t.TempDir()
	if err := rec.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != rec.Name || back.Query != rec.Query || back.SimCostTotal != rec.SimCostTotal {
		t.Errorf("round trip lost scalar fields: %+v", back)
	}
	if !reflect.DeepEqual(back.Metrics, rec.Metrics) {
		t.Errorf("round trip lost metrics: %+v", back.Metrics)
	}
	if !reflect.DeepEqual(back.Optimizer, rec.Optimizer) {
		t.Errorf("round trip lost optimizer span: %+v", back.Optimizer)
	}
	if !reflect.DeepEqual(back.Decisions, rec.Decisions) {
		t.Errorf("round trip lost decisions: %+v", back.Decisions)
	}
	if back.Operators.NodeCount() != rec.Operators.NodeCount() {
		t.Errorf("round trip lost operator tree: %d nodes, want %d",
			back.Operators.NodeCount(), rec.Operators.NodeCount())
	}
	if back.Operators.Counters != rec.Operators.Counters {
		t.Errorf("round trip lost root counters: %+v", back.Operators.Counters)
	}
}

func TestRunRecordFilenameRejectsUnsafeNames(t *testing.T) {
	for _, bad := range []string{"", "a/b", "a b", "../x", "a\nb"} {
		r := &RunRecord{Name: bad}
		if _, err := r.Filename(); err == nil {
			t.Errorf("Filename accepted unsafe name %q", bad)
		}
	}
}

func TestCompare(t *testing.T) {
	base := &RunRecord{
		Name:         "cmp",
		SimCostTotal: 10,
		Metrics:      map[string]float64{"a": 100, "b": 50, "zero": 0},
	}

	t.Run("within-tolerance", func(t *testing.T) {
		cur := &RunRecord{Name: "cmp", SimCostTotal: 10.5,
			Metrics: map[string]float64{"a": 105, "b": 50, "zero": 0}}
		if deltas := Compare(base, cur, 0.10); len(deltas) != 0 {
			t.Errorf("unexpected deltas: %+v", deltas)
		}
	})

	t.Run("gating-regression", func(t *testing.T) {
		cur := &RunRecord{Name: "cmp", SimCostTotal: 12,
			Metrics: map[string]float64{"a": 100, "b": 50, "zero": 0}}
		deltas := Compare(base, cur, 0.10)
		if len(deltas) != 1 || !deltas[0].Gating || deltas[0].Metric != "sim_cost_total" {
			t.Fatalf("want one gating sim_cost_total delta, got %+v", deltas)
		}
	})

	t.Run("improvement-not-gating", func(t *testing.T) {
		cur := &RunRecord{Name: "cmp", SimCostTotal: 5,
			Metrics: map[string]float64{"a": 100, "b": 50, "zero": 0}}
		for _, d := range Compare(base, cur, 0.10) {
			if d.Gating {
				t.Errorf("improvement flagged as gating: %+v", d)
			}
		}
	})

	t.Run("metric-drift-informational", func(t *testing.T) {
		cur := &RunRecord{Name: "cmp", SimCostTotal: 10,
			Metrics: map[string]float64{"a": 150, "b": 50, "zero": 0}}
		deltas := Compare(base, cur, 0.10)
		if len(deltas) != 1 || deltas[0].Gating || deltas[0].Metric != "a" {
			t.Fatalf("want one informational delta for a, got %+v", deltas)
		}
	})

	t.Run("missing-metric-reported", func(t *testing.T) {
		cur := &RunRecord{Name: "cmp", SimCostTotal: 10,
			Metrics: map[string]float64{"a": 100, "zero": 0}}
		deltas := Compare(base, cur, 0.10)
		if len(deltas) != 1 || deltas[0].Metric != "b" {
			t.Fatalf("want one delta for missing b, got %+v", deltas)
		}
	})

	t.Run("size-only-record-never-gates", func(t *testing.T) {
		b0 := &RunRecord{Name: "sizes", SimCostTotal: 0, Metrics: map[string]float64{"nodes": 10}}
		c0 := &RunRecord{Name: "sizes", SimCostTotal: 99, Metrics: map[string]float64{"nodes": 100}}
		for _, d := range Compare(b0, c0, 0.10) {
			if d.Gating {
				t.Errorf("size-only record produced a gating delta: %+v", d)
			}
		}
	})
}

func TestRenderContainsPerOperatorFigures(t *testing.T) {
	root, j1, r, _, _ := chainPlan()
	c := NewCollector()
	c.StatsFor(r).Add(Counters{Rows: 100, NextCalls: 101, SeqPageReads: 10, WallNanos: 5000})
	c.StatsFor(j1).Add(Counters{Rows: 30, NextCalls: 31, SeqPageReads: 15, WallNanos: 9000, MemBytes: 2048})
	c.StatsFor(root).Add(Counters{Rows: 7, NextCalls: 8, SeqPageReads: 17, WallNanos: 12000})
	out := c.Tree(root).Render(CostRates{SeqPage: 0.008})
	for _, want := range []string{"Hash-Join", "File-Scan R", "rows=100", "seq=15", "mem=2.0KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSharedNodePrintedOnce(t *testing.T) {
	r := &physical.Node{Op: physical.FileScan, Rel: "R"}
	join := &physical.Node{Op: physical.HashJoin, LeftAttr: "R.j", RightAttr: "R.j",
		Children: []*physical.Node{r, r}}
	c := NewCollector()
	c.StatsFor(r).Add(Counters{Rows: 10})
	out := c.Tree(join).Render(CostRates{})
	if got := strings.Count(out, "shared, shown above"); got != 1 {
		t.Errorf("shared subplan marker appears %d times, want 1:\n%s", got, out)
	}
}

func TestNewChoiceReasons(t *testing.T) {
	tr := NewChoice("Choose-Plan (3 alternatives)",
		[]string{"a", "b", "c"}, []float64{1.5, 2.5, AbortedCost}, 0)
	if tr.Picked != 0 {
		t.Errorf("Picked = %d", tr.Picked)
	}
	if !strings.Contains(tr.Reason, "runner-up") || !strings.Contains(tr.Reason, "aborted") {
		t.Errorf("Reason = %q", tr.Reason)
	}

	only := NewChoice("Choose-Plan (2 alternatives)", []string{"a", "b"}, []float64{3, AbortedCost}, 0)
	if !strings.Contains(only.Reason, "only completed evaluation") {
		t.Errorf("Reason = %q", only.Reason)
	}

	out := RenderDecisions([]ChoiceTrace{tr})
	if !strings.Contains(out, "* 1.") || !strings.Contains(out, "aborted") {
		t.Errorf("RenderDecisions output:\n%s", out)
	}
	if RenderDecisions(nil) == "" {
		t.Error("RenderDecisions(nil) should explain there were no decisions")
	}
}

func TestOptimizerSpanRender(t *testing.T) {
	s := &OptimizerSpan{Goals: 12, Candidates: 40, PrunedByBound: 5, KeptIncomparable: 3,
		ChoosePlansEmitted: 3, PlanChoosePlans: 2, PlanNodes: 17, EncodedAlternatives: 20}
	out := s.Render()
	for _, want := range []string{"12 goals", "40 candidates", "kept incomparable: 3", "17 nodes", "20 alternatives"} {
		if !strings.Contains(out, want) {
			t.Errorf("span render missing %q:\n%s", want, out)
		}
	}
	var nilSpan *OptimizerSpan
	if !strings.Contains(nilSpan.Render(), "not recorded") {
		t.Error("nil span render should say not recorded")
	}
}

func TestMetricNamesSorted(t *testing.T) {
	names := MetricNames(map[string]float64{"b": 1, "a": 2, "c": 3})
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{512: "512B", 2048: "2.0KB", 3 << 20: "3.0MB"}
	for n, want := range cases {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the workload observatory's metrics registry: a long-lived,
// concurrency-safe aggregation point the database records every observed
// execution into. Where the Collector is a per-execution window (one query,
// one stats tree), the Registry is the cross-query view — counters,
// gauges, and log-bucketed histograms over the whole workload, keyed by
// operator kind and base relation, plus the interval-calibration table and
// the recent-query ring buffer the HTTP endpoint serves.
//
// Like the Collector, the disabled state is a nil *Registry: every method
// is safe on a nil receiver and the fast path allocates nothing (see
// TestDisabledRegistryAllocatesNothing).

// Counter is a monotonically increasing atomic tally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d; no-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Load returns the current value; zero on nil.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set float64 level (pool sizes, high-water marks).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's current level; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// SetMax raises the gauge to v if v exceeds the current level.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if floatFromBits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// Load returns the gauge's level; zero on nil.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// histBuckets is the number of log2 buckets a histogram holds: bucket 0
// collects non-positive samples, bucket i (i ≥ 1) the samples v with
// 2^(i-1) ≤ v < 2^i, so the full int64 range fits.
const histBuckets = 65

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (latencies in nanoseconds, page counts, row counts). Buckets are powers
// of two, so Record is one atomic add with no allocation and quantiles are
// exact to within a factor of two — tight enough for p50/p95/p99 tail
// tracking across a workload. All methods are nil-safe and safe for
// concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf returns the bucket index for a sample.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketHi returns the largest value bucket b can hold.
func bucketHi(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<b - 1
}

// Record adds one sample; no-op on a nil receiver.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	for {
		old := h.max.Load()
		if old >= v {
			return
		}
		if h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all positive samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest sample recorded.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-th quantile (q in (0, 1]): the inclusive upper
// bound of the bucket holding the q-th sample, clamped to the observed
// maximum so Quantile(1) is exact. An empty histogram reports 0. Under
// concurrent Record the estimate is a consistent-enough snapshot, not a
// linearizable one.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := int64(0)
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile lands on.
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for b := 0; b < histBuckets; b++ {
		cum += counts[b]
		if cum >= rank {
			hi := bucketHi(b)
			if m := h.max.Load(); m < hi {
				hi = m
			}
			return float64(hi)
		}
	}
	return float64(h.max.Load())
}

// HistogramSnapshot is the JSON form of a histogram: count, sum, max, and
// the standard tail quantiles.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// QuerySample is the per-query tally the outermost Execute* path records
// into the registry when the observatory is enabled.
type QuerySample struct {
	WallNanos      int64
	Rows           int64
	SeqPageReads   int64
	RandPageReads  int64
	PageWrites     int64
	TupleOps       int64
	Retries        int64
	BackoffNanos   int64
	QueueWaitNanos int64
	Failed         bool
}

// OpAggregate is the cumulative per-key (operator kind or relation) tally
// of the keyed metrics.
type OpAggregate struct {
	// Executions counts how many metered operator instances of this key
	// ran (one per plan node per execution).
	Executions int64 `json:"executions"`
	// Counters is the summed per-operator tally; MemBytes widens to the
	// largest high-water mark seen.
	Counters Counters `json:"counters"`
}

// Registry is the workload-level metrics registry. The zero of the
// observatory is a nil *Registry: every method no-ops on nil, so the
// disabled per-query overhead is one pointer comparison.
type Registry struct {
	// Queries counts completed top-level Execute* calls (one per query,
	// however many attempts the resilient executor needed); Executions
	// counts individual plan executions including retries.
	Queries    Counter
	Executions Counter
	// Errors counts queries whose final outcome was an error; Sheds the
	// subset rejected by admission control; Retries the retry attempts the
	// resilient executor performed; BreakerTrips the circuit-breaker
	// openings observed.
	Errors       Counter
	Sheds        Counter
	Retries      Counter
	BreakerTrips Counter
	// Violations counts interval-calibration verdicts whose actual fell
	// outside the predicted [lo, hi].
	Violations Counter
	// Reopts counts mid-query guard violations the re-optimization stage
	// handled; ReoptSwitches, ReoptReplans, and ReoptDegrades split them
	// by the remedy chosen. WatchdogStalls counts progress-watchdog
	// no-progress cancellations.
	Reopts         Counter
	ReoptSwitches  Counter
	ReoptReplans   Counter
	ReoptDegrades  Counter
	WatchdogStalls Counter
	// ReoptTempsCreated and ReoptTempsReleased tally the temporaries the
	// re-optimization controller spooled and released. They must always be
	// equal once no query is in flight — the leak check error paths (which
	// carry no ExecResult) are audited against.
	ReoptTempsCreated  Counter
	ReoptTempsReleased Counter
	// ParallelQueries counts executions that ran with DOP > 1;
	// ParallelExchanges the exchange operators those executions ran.
	ParallelQueries   Counter
	ParallelExchanges Counter
	// WorkerRetries counts partition re-runs exchange workers absorbed
	// inside their own fault domain; DopDegrades and SerialFallbacks count
	// the degradation ladder's rungs — DOP halvings and drops to serial.
	// Recorded at decision time, so ladders that ultimately fail still
	// show their descent.
	WorkerRetries   Counter
	DopDegrades     Counter
	SerialFallbacks Counter

	// PlanCacheHits, PlanCacheMisses, and PlanCacheEvictions mirror the
	// shared plan cache's counters: hits are prepared executions served a
	// cached compiled module (paying only start-up-time activation),
	// misses paid a full optimization, evictions are LRU displacements.
	PlanCacheHits      Counter
	PlanCacheMisses    Counter
	PlanCacheEvictions Counter

	// PoolPages is the governor's grant-pool size; WorstQError the largest
	// q-error any calibration verdict has reported; PartitionSkewMax the
	// worst partition skew any parallel exchange has shown.
	PoolPages        Gauge
	WorstQError      Gauge
	PartitionSkewMax Gauge

	// Latency, QueueWait, and Backoff are nanosecond histograms; PagesRead
	// and RowsOut count per-query I/O volume and result size; ReplanNanos
	// tracks the optimizer time mid-query replans spent; ExchangeWait the
	// time parallel gathers spent blocked on worker batches;
	// WorkerRetryBackoff the nominal pause before each worker-retry
	// attempt (deterministic, from the retry policy — not measured).
	Latency            Histogram
	QueueWait          Histogram
	Backoff            Histogram
	PagesRead          Histogram
	RowsOut            Histogram
	ReplanNanos        Histogram
	ExchangeWait       Histogram
	WorkerRetryBackoff Histogram
	// Activation is the latency of start-up-time processing (choose-plan
	// resolution) — the cost a plan-cache hit still pays per execution.
	Activation Histogram

	// Traces counts finished query traces folded into the registry.
	Traces Counter

	mu      sync.Mutex
	ops     map[string]*OpAggregate
	rels    map[string]*OpAggregate
	calib   map[calibKey]*CalibrationReport
	stages  map[string]*Histogram
	tenants map[string]*tenantAgg
	log     queryLog
	traces  traceLog
}

// tenantAgg is one tenant's live admission account; counters and the
// wait histogram are atomic, so only map access needs the registry lock.
type tenantAgg struct {
	queries Counter
	errors  Counter
	sheds   Counter
	wait    Histogram
}

// TenantAggregate is one tenant's admission account as served by
// /metrics: completed queries, failures, admission rejections, and the
// queue-wait distribution — the numbers that make per-tenant fairness
// observable.
type TenantAggregate struct {
	Queries   int64             `json:"queries"`
	Errors    int64             `json:"errors,omitempty"`
	Sheds     int64             `json:"sheds,omitempty"`
	QueueWait HistogramSnapshot `json:"queue_wait_ns"`
}

// NewRegistry returns an empty, enabled registry whose query log retains
// the most recent logCap run records (DefaultQueryLogCap when logCap ≤ 0).
func NewRegistry(logCap int) *Registry {
	r := &Registry{
		ops:    make(map[string]*OpAggregate),
		rels:   make(map[string]*OpAggregate),
		calib:  make(map[calibKey]*CalibrationReport),
		stages: make(map[string]*Histogram),
	}
	r.log.init(logCap)
	r.traces.init(0)
	return r
}

// Enabled reports whether the registry is collecting; false on nil.
func (r *Registry) Enabled() bool { return r != nil }

// RecordQuery records one completed top-level query.
func (r *Registry) RecordQuery(s QuerySample) {
	if r == nil {
		return
	}
	r.Queries.Add(1)
	if s.Failed {
		r.Errors.Add(1)
	}
	r.Retries.Add(s.Retries)
	r.Latency.Record(s.WallNanos)
	if s.QueueWaitNanos > 0 {
		r.QueueWait.Record(s.QueueWaitNanos)
	}
	if s.BackoffNanos > 0 {
		r.Backoff.Record(s.BackoffNanos)
	}
	if !s.Failed {
		r.PagesRead.Record(s.SeqPageReads + s.RandPageReads)
		r.RowsOut.Record(s.Rows)
	}
}

// RecordShed counts one admission-control rejection.
func (r *Registry) RecordShed() {
	if r == nil {
		return
	}
	r.Sheds.Add(1)
}

// tenantAggFor returns (creating on first use) the named tenant's
// aggregate; nil for the anonymous tenant or a nil registry.
func (r *Registry) tenantAggFor(tenant string) *tenantAgg {
	if r == nil || tenant == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tenants == nil {
		r.tenants = make(map[string]*tenantAgg)
	}
	a := r.tenants[tenant]
	if a == nil {
		a = &tenantAgg{}
		r.tenants[tenant] = a
	}
	return a
}

// RecordTenantQuery charges one completed query to the tenant's account:
// its admission queue wait and whether it ultimately failed.
func (r *Registry) RecordTenantQuery(tenant string, queueWaitNanos int64, failed bool) {
	a := r.tenantAggFor(tenant)
	if a == nil {
		return
	}
	a.queries.Add(1)
	if failed {
		a.errors.Add(1)
	}
	a.wait.Record(queueWaitNanos)
}

// RecordTenantShed charges one admission rejection to the tenant.
func (r *Registry) RecordTenantShed(tenant string) {
	if a := r.tenantAggFor(tenant); a != nil {
		a.sheds.Add(1)
	}
}

// TenantSnapshot returns the named tenant's current aggregate; the zero
// value when the tenant has never been seen.
func (r *Registry) TenantSnapshot(tenant string) TenantAggregate {
	if r == nil {
		return TenantAggregate{}
	}
	r.mu.Lock()
	a := r.tenants[tenant]
	r.mu.Unlock()
	if a == nil {
		return TenantAggregate{}
	}
	return TenantAggregate{
		Queries:   a.queries.Load(),
		Errors:    a.errors.Load(),
		Sheds:     a.sheds.Load(),
		QueueWait: a.wait.Snapshot(),
	}
}

// RecordBreakerTrip counts one circuit-breaker opening.
func (r *Registry) RecordBreakerTrip() {
	if r == nil {
		return
	}
	r.BreakerTrips.Add(1)
}

// RecordReopt folds one query's mid-query re-optimization events into the
// counters and the replan-time histogram.
func (r *Registry) RecordReopt(events []ReoptEvent) {
	if r == nil || len(events) == 0 {
		return
	}
	for _, e := range events {
		switch e.Stage {
		case "violation":
			r.Reopts.Add(1)
		case "switch":
			r.ReoptSwitches.Add(1)
		case "replan":
			r.ReoptReplans.Add(1)
		case "degrade":
			r.ReoptDegrades.Add(1)
		}
		if e.PlanningNanos > 0 {
			r.ReplanNanos.Record(e.PlanningNanos)
		}
	}
}

// RecordParallel folds one parallel execution's summary into the
// registry: the query and exchange counts, the skew high-water mark, and
// each exchange's gather-wait sample.
func (r *Registry) RecordParallel(ps *ParallelStats) {
	if r == nil || ps == nil || ps.DOP <= 1 {
		return
	}
	r.ParallelQueries.Add(1)
	r.ParallelExchanges.Add(int64(len(ps.Exchanges)))
	r.PartitionSkewMax.SetMax(ps.MaxSkew())
	r.WorkerRetries.Add(ps.WorkerRetries)
	for _, e := range ps.Exchanges {
		r.ExchangeWait.Record(e.GatherWaitNanos)
		for _, ns := range e.RetryBackoffNanos {
			r.WorkerRetryBackoff.Record(ns)
		}
	}
}

// RecordDegrade counts one degradation-ladder step at decision time:
// "dop-halve" rungs land in DopDegrades, "serial-fallback" in
// SerialFallbacks.
func (r *Registry) RecordDegrade(rung string) {
	if r == nil {
		return
	}
	switch rung {
	case "dop-halve":
		r.DopDegrades.Add(1)
	case "serial-fallback":
		r.SerialFallbacks.Add(1)
	}
}

// RecordWatchdogStall counts one progress-watchdog no-progress trip.
func (r *Registry) RecordWatchdogStall() {
	if r == nil {
		return
	}
	r.WatchdogStalls.Add(1)
}

// RecordOperators folds an execution's stats tree into the keyed
// aggregates: each distinct node is charged once to its operator kind and,
// when it reads a base relation, to that relation.
func (r *Registry) RecordOperators(tree *PlanStats) {
	if r == nil || tree == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[*PlanStats]bool)
	var walk func(s *PlanStats)
	walk = func(s *PlanStats) {
		if seen[s] {
			return
		}
		seen[s] = true
		aggInto(r.ops, s.Op, s.Counters)
		if s.Rel != "" {
			aggInto(r.rels, s.Rel, s.Counters)
		}
		for _, ch := range s.Children {
			walk(ch)
		}
	}
	walk(tree)
}

func aggInto(m map[string]*OpAggregate, key string, c Counters) {
	a := m[key]
	if a == nil {
		a = &OpAggregate{}
		m[key] = a
	}
	a.Executions++
	a.Counters.Add(c)
}

// RegistrySnapshot is the JSON form of the registry: the /metrics payload.
type RegistrySnapshot struct {
	Queries      int64 `json:"queries"`
	Executions   int64 `json:"executions"`
	Errors       int64 `json:"errors"`
	Sheds        int64 `json:"sheds"`
	Retries      int64 `json:"retries"`
	BreakerTrips int64 `json:"breaker_trips"`
	Violations   int64 `json:"interval_violations"`

	Reopts             int64 `json:"reopts,omitempty"`
	ReoptSwitches      int64 `json:"reopt_switches,omitempty"`
	ReoptReplans       int64 `json:"reopt_replans,omitempty"`
	ReoptDegrades      int64 `json:"reopt_degrades,omitempty"`
	WatchdogStalls     int64 `json:"watchdog_stalls,omitempty"`
	ReoptTempsCreated  int64 `json:"reopt_temps_created,omitempty"`
	ReoptTempsReleased int64 `json:"reopt_temps_released,omitempty"`

	ParallelQueries   int64 `json:"parallel_queries,omitempty"`
	ParallelExchanges int64 `json:"parallel_exchanges,omitempty"`
	WorkerRetries     int64 `json:"worker_retries,omitempty"`
	DopDegrades       int64 `json:"dop_degrades,omitempty"`
	SerialFallbacks   int64 `json:"serial_fallbacks,omitempty"`

	PlanCacheHits      int64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses    int64 `json:"plan_cache_misses,omitempty"`
	PlanCacheEvictions int64 `json:"plan_cache_evictions,omitempty"`

	PoolPages        float64 `json:"pool_pages,omitempty"`
	WorstQError      float64 `json:"worst_q_error,omitempty"`
	PartitionSkewMax float64 `json:"partition_skew_max,omitempty"`

	LatencyNanos       HistogramSnapshot `json:"latency_ns"`
	QueueWaitNanos     HistogramSnapshot `json:"queue_wait_ns"`
	BackoffNanos       HistogramSnapshot `json:"backoff_ns"`
	PagesRead          HistogramSnapshot `json:"pages_read"`
	RowsOut            HistogramSnapshot `json:"rows_out"`
	ReplanNanos        HistogramSnapshot `json:"replan_ns,omitempty"`
	ExchangeWait       HistogramSnapshot `json:"exchange_wait_ns,omitempty"`
	WorkerRetryBackoff HistogramSnapshot `json:"worker_retry_backoff_ns,omitempty"`
	Activation         HistogramSnapshot `json:"activation_ns"`

	Traces       int64                        `json:"traces,omitempty"`
	StageLatency map[string]HistogramSnapshot `json:"stage_latency_ns,omitempty"`

	Operators map[string]OpAggregate `json:"operators,omitempty"`
	Relations map[string]OpAggregate `json:"relations,omitempty"`
	// Tenants is the per-tenant admission view: one aggregate per tenant
	// that has executed (or been shed) under a non-empty identity.
	Tenants map[string]TenantAggregate `json:"tenants,omitempty"`
}

// Snapshot captures the registry's current state; nil on a nil registry.
func (r *Registry) Snapshot() *RegistrySnapshot {
	if r == nil {
		return nil
	}
	s := &RegistrySnapshot{
		Queries:            r.Queries.Load(),
		Executions:         r.Executions.Load(),
		Errors:             r.Errors.Load(),
		Sheds:              r.Sheds.Load(),
		Retries:            r.Retries.Load(),
		BreakerTrips:       r.BreakerTrips.Load(),
		Violations:         r.Violations.Load(),
		Reopts:             r.Reopts.Load(),
		ReoptSwitches:      r.ReoptSwitches.Load(),
		ReoptReplans:       r.ReoptReplans.Load(),
		ReoptDegrades:      r.ReoptDegrades.Load(),
		WatchdogStalls:     r.WatchdogStalls.Load(),
		ReoptTempsCreated:  r.ReoptTempsCreated.Load(),
		ReoptTempsReleased: r.ReoptTempsReleased.Load(),
		ParallelQueries:    r.ParallelQueries.Load(),
		ParallelExchanges:  r.ParallelExchanges.Load(),
		WorkerRetries:      r.WorkerRetries.Load(),
		DopDegrades:        r.DopDegrades.Load(),
		SerialFallbacks:    r.SerialFallbacks.Load(),
		PoolPages:          r.PoolPages.Load(),
		WorstQError:        r.WorstQError.Load(),
		PartitionSkewMax:   r.PartitionSkewMax.Load(),
		LatencyNanos:       r.Latency.Snapshot(),
		QueueWaitNanos:     r.QueueWait.Snapshot(),
		BackoffNanos:       r.Backoff.Snapshot(),
		PagesRead:          r.PagesRead.Snapshot(),
		RowsOut:            r.RowsOut.Snapshot(),
		ReplanNanos:        r.ReplanNanos.Snapshot(),
		ExchangeWait:       r.ExchangeWait.Snapshot(),
		WorkerRetryBackoff: r.WorkerRetryBackoff.Snapshot(),
		Activation:         r.Activation.Snapshot(),
		PlanCacheHits:      r.PlanCacheHits.Load(),
		PlanCacheMisses:    r.PlanCacheMisses.Load(),
		PlanCacheEvictions: r.PlanCacheEvictions.Load(),
		Traces:             r.Traces.Load(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.stages) > 0 {
		s.StageLatency = make(map[string]HistogramSnapshot, len(r.stages))
		for k, h := range r.stages {
			s.StageLatency[k] = h.Snapshot()
		}
	}
	if len(r.ops) > 0 {
		s.Operators = make(map[string]OpAggregate, len(r.ops))
		for k, v := range r.ops {
			s.Operators[k] = *v
		}
	}
	if len(r.rels) > 0 {
		s.Relations = make(map[string]OpAggregate, len(r.rels))
		for k, v := range r.rels {
			s.Relations[k] = *v
		}
	}
	if len(r.tenants) > 0 {
		s.Tenants = make(map[string]TenantAggregate, len(r.tenants))
		for k, a := range r.tenants {
			s.Tenants[k] = TenantAggregate{
				Queries:   a.queries.Load(),
				Errors:    a.errors.Load(),
				Sheds:     a.sheds.Load(),
				QueueWait: a.wait.Snapshot(),
			}
		}
	}
	return s
}

// RecordCalibration folds an execution's calibration verdicts into the
// per-(kind, op, rel) reports and updates the violation counter and
// worst-q-error gauge.
func (r *Registry) RecordCalibration(verdicts []CalibrationVerdict) {
	if r == nil || len(verdicts) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range verdicts {
		key := calibKey{Kind: v.Kind, Op: v.Op, Rel: v.Rel}
		rep := r.calib[key]
		if rep == nil {
			rep = &CalibrationReport{Kind: v.Kind, Op: v.Op, Rel: v.Rel}
			r.calib[key] = rep
		}
		rep.observe(v)
		if v.Violation {
			r.Violations.Add(1)
		}
		r.WorstQError.SetMax(v.QError)
	}
}

// CalibrationReports returns the aggregated calibration table, worst
// offenders first (by max q-error, then violation rate); nil on a nil
// registry.
func (r *Registry) CalibrationReports() []CalibrationReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]CalibrationReport, 0, len(r.calib))
	for _, rep := range r.calib {
		out = append(out, *rep)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxQError != out[j].MaxQError {
			return out[i].MaxQError > out[j].MaxQError
		}
		if ri, rj := out[i].ViolationRate(), out[j].ViolationRate(); ri != rj {
			return ri > rj
		}
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Rel < out[j].Rel
	})
	return out
}

// LogQuery appends a run record to the recent-query ring buffer.
func (r *Registry) LogQuery(rec *RunRecord) {
	if r == nil || rec == nil {
		return
	}
	r.log.append(rec)
}

// RecentQueries returns the retained run records, oldest first, up to max
// entries (all when max ≤ 0); nil on a nil registry.
func (r *Registry) RecentQueries(max int) []*RunRecord {
	if r == nil {
		return nil
	}
	return r.log.recent(max)
}

// RecordTrace folds one finished query trace into the registry: the
// bounded trace ring behind /traces, and one per-stage latency sample for
// every pipeline-stage span in the tree.
func (r *Registry) RecordTrace(rec *TraceRecord) {
	if r == nil || rec == nil {
		return
	}
	r.Traces.Add(1)
	r.traces.append(rec)
	if rec.Root == nil {
		return
	}
	rec.Root.Walk(func(s *Span) {
		if s.Kind != SpanStage {
			return
		}
		r.stageHistogram(s.Name).Record(s.DurationNanos)
	})
}

// stageHistogram returns (creating on first use) the latency histogram
// for the named pipeline stage.
func (r *Registry) stageHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stages == nil {
		r.stages = make(map[string]*Histogram)
	}
	h := r.stages[name]
	if h == nil {
		h = &Histogram{}
		r.stages[name] = h
	}
	return h
}

// StageLatency returns the named stage's latency histogram, or nil if the
// stage has never been traced (or the registry is disabled).
func (r *Registry) StageLatency(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stages[name]
}

// RecentTraces returns the retained trace records, oldest first, up to
// max entries (all when max ≤ 0); nil on a nil registry.
func (r *Registry) RecentTraces(max int) []*TraceRecord {
	if r == nil {
		return nil
	}
	return r.traces.recent(max)
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

package obs

import (
	"fmt"
	"strings"
)

// DegradeEvent is one rung of the graceful-degradation ladder: a parallel
// execution escalated past its per-worker retries and the degradation
// controller stepped the degree of parallelism down instead of failing the
// query. Events ride the ExecResult and the query-log run record, so the
// /queries trace and ExplainAnalyze both show how the ladder descended.
type DegradeEvent struct {
	// Attempt is the 1-based degraded re-execution this event ordered;
	// attempt 1 is the first step down from the original DOP.
	Attempt int `json:"attempt"`
	// Rung names the ladder step taken: "dop-halve" (the DOP was halved
	// and the query re-run parallel) or "serial-fallback" (the DOP
	// reached 1 and the query re-ran serial — the last rung the
	// controller owns before the whole-query remedies take over).
	Rung string `json:"rung"`
	// FromDOP and ToDOP bracket the step: the DOP the failed execution
	// ran with and the cap the re-execution runs under.
	FromDOP int `json:"from_dop"`
	ToDOP   int `json:"to_dop"`
	// Class is the qerr classification of the escalated fault
	// ("permanent-io", "transient-io", ...) and Error its message.
	Class string `json:"class,omitempty"`
	Error string `json:"error,omitempty"`
}

// RenderDegrade renders the degradation trace as the DEGRADE lines
// ExplainAnalyze appends.
func RenderDegrade(events []DegradeEvent) string {
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "DEGRADE %s: dop %d -> %d (attempt %d", e.Rung, e.FromDOP, e.ToDOP, e.Attempt)
		if e.Class != "" {
			fmt.Fprintf(&b, ", %s", e.Class)
		}
		b.WriteByte(')')
		if e.Error != "" {
			b.WriteString(" — ")
			b.WriteString(e.Error)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Package obs is the observability substrate of the system: per-operator
// runtime metrics, optimizer spans, and start-up decision traces, rendered
// both as human-readable EXPLAIN ANALYZE text and as machine-readable JSON
// run records the benchmark pipeline diffs in CI.
//
// The paper's entire evaluation (§6) is a measurement exercise —
// optimization time, plans compared, memo and module sizes, start-up cost,
// and predicted execution cost of static versus dynamic plans. This package
// turns those ad-hoc printouts into a first-class telemetry layer: the
// executor meters every Volcano iterator, the search engine reports what it
// enumerated and pruned, and activation records why each choose-plan branch
// was taken. It is also the substrate the ROADMAP's runtime-re-optimization
// direction needs: mid-query statistics collection presupposes per-operator
// counters that are free when disabled.
//
// The package is dependency-free beyond the standard library and
// internal/physical (for plan-node identity), and every Collector method is
// safe on a nil receiver: a disabled collector is a nil pointer, so the
// executor's fast path is a single pointer comparison and allocates
// nothing (see TestDisabledCollectorAllocatesNothing).
package obs

import (
	"fmt"
	"sort"
	"sync"

	"dynplan/internal/physical"
)

// Counters is the per-operator tally a metered iterator accumulates.
// Page, tuple, fault, and wall-time counters are inclusive: they cover the
// operator and everything beneath it, because they are measured as deltas
// around the operator's own Open/Next/Close calls (the convention of
// EXPLAIN ANALYZE in mainstream systems). Rows, Opens, and NextCalls are
// the operator's own.
type Counters struct {
	// Opens and NextCalls count the iterator protocol traffic through the
	// operator; Rows counts the rows it produced (Rows = successful Next
	// calls, so NextCalls is typically Rows+1 for the end-of-stream call).
	Opens     int64 `json:"opens"`
	NextCalls int64 `json:"next_calls"`
	Rows      int64 `json:"rows"`

	// SeqPageReads, RandPageReads, PageWrites, and TupleOps are the
	// simulated-I/O account charged while the operator (or any input
	// beneath it) was running.
	SeqPageReads  int64 `json:"seq_page_reads"`
	RandPageReads int64 `json:"rand_page_reads"`
	PageWrites    int64 `json:"page_writes"`
	TupleOps      int64 `json:"tuple_ops"`

	// FaultsAbsorbed counts injected transient faults the storage layer
	// retried away during the operator's calls.
	FaultsAbsorbed int64 `json:"faults_absorbed,omitempty"`

	// WallNanos is the real time spent inside the operator's calls
	// (inclusive of inputs).
	WallNanos int64 `json:"wall_ns"`

	// MemBytes is the high-water mark of the operator's own buffered
	// memory (hash-join build side, sort workspace, spooled temporaries);
	// zero for streaming operators.
	MemBytes int64 `json:"mem_bytes,omitempty"`
}

// Add accumulates another tally into c, the aggregation primitive used
// when merging counters across operators or executions.
func (c *Counters) Add(d Counters) {
	c.Opens += d.Opens
	c.NextCalls += d.NextCalls
	c.Rows += d.Rows
	c.SeqPageReads += d.SeqPageReads
	c.RandPageReads += d.RandPageReads
	c.PageWrites += d.PageWrites
	c.TupleOps += d.TupleOps
	c.FaultsAbsorbed += d.FaultsAbsorbed
	c.WallNanos += d.WallNanos
	if d.MemBytes > c.MemBytes {
		c.MemBytes = d.MemBytes
	}
}

// CostRates are the per-unit charges that convert a tally into simulated
// seconds; they mirror the cost-model constants (physical.Params).
type CostRates struct {
	SeqPage  float64
	RandPage float64
	Write    float64
	Tuple    float64
}

// SimulatedSeconds converts the tally to simulated execution time.
func (c Counters) SimulatedSeconds(r CostRates) float64 {
	return float64(c.SeqPageReads)*r.SeqPage +
		float64(c.RandPageReads)*r.RandPage +
		float64(c.PageWrites)*r.Write +
		float64(c.TupleOps)*r.Tuple
}

// Collector gathers per-operator counters for one execution, keyed by plan
// node. The zero of observability is a nil *Collector: every method is
// nil-safe, so callers hold a plain pointer field and never branch beyond
// the nil check the methods perform themselves.
type Collector struct {
	mu    sync.Mutex
	stats map[*physical.Node]*Counters
	preds map[*physical.Node]Prediction
}

// NewCollector returns an empty, enabled collector.
func NewCollector() *Collector {
	return &Collector{stats: make(map[*physical.Node]*Counters)}
}

// Predict attaches a compile-time cardinality interval to a plan node, so
// the stats tree can be calibrated against it after execution. No-op on a
// nil collector.
func (c *Collector) Predict(n *physical.Node, p Prediction) {
	if c == nil || n == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.preds == nil {
		c.preds = make(map[*physical.Node]Prediction)
	}
	c.preds[n] = p
}

// Enabled reports whether the collector is collecting; false on nil.
func (c *Collector) Enabled() bool { return c != nil }

// StatsFor returns the counter struct for a plan node, creating it on
// first use. It returns nil on a nil collector — the disabled fast path.
func (c *Collector) StatsFor(n *physical.Node) *Counters {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stats[n]
	if !ok {
		s = &Counters{}
		c.stats[n] = s
	}
	return s
}

// Reset clears all collected counters; no-op on nil.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.stats)
}

// PlanStats is one node of the stats tree that parallels the executed
// physical plan: the operator's label, its counters, and its inputs. It is
// both the EXPLAIN ANALYZE model and the plan-shape section of a JSON run
// record.
type PlanStats struct {
	Op       string   `json:"op"`
	Label    string   `json:"label"`
	Counters Counters `json:"counters"`
	// Rel names the base relation the operator reads, when it reads one —
	// the key the workload registry aggregates per-relation metrics under.
	Rel string `json:"rel,omitempty"`
	// Predicted is the compile-time cardinality interval attached via
	// Collector.Predict; QError and Violation are filled in by Calibrate
	// after execution.
	Predicted *Prediction  `json:"predicted,omitempty"`
	QError    float64      `json:"q_error,omitempty"`
	Violation bool         `json:"violation,omitempty"`
	Children  []*PlanStats `json:"children,omitempty"`
}

// Tree builds the stats tree for the plan rooted at root from the
// collected counters. Nodes the execution never compiled report zero
// counters. It returns nil on a nil collector.
func (c *Collector) Tree(root *physical.Node) *PlanStats {
	if c == nil || root == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	memo := make(map[*physical.Node]*PlanStats)
	return c.tree(root, memo)
}

func (c *Collector) tree(n *physical.Node, memo map[*physical.Node]*PlanStats) *PlanStats {
	if s, ok := memo[n]; ok {
		return s
	}
	s := &PlanStats{Op: n.Op.String(), Label: n.Label(), Rel: n.Rel}
	memo[n] = s
	if cnt := c.stats[n]; cnt != nil {
		s.Counters = *cnt
	}
	if p, ok := c.preds[n]; ok {
		pred := p
		s.Predicted = &pred
	}
	for _, ch := range n.Children {
		s.Children = append(s.Children, c.tree(ch, memo))
	}
	return s
}

// Total returns the execution-wide tally: the root's counters, whose I/O,
// tuple, fault, and wall figures are inclusive of the whole tree and whose
// Rows is the result cardinality. MemBytes is widened to the largest
// high-water mark anywhere in the tree (buffering operators below the root
// hold the real memory).
func (s *PlanStats) Total() Counters {
	if s == nil {
		return Counters{}
	}
	total := s.Counters
	seen := make(map[*PlanStats]bool)
	var walk func(p *PlanStats)
	walk = func(p *PlanStats) {
		if seen[p] {
			return
		}
		seen[p] = true
		if p.Counters.MemBytes > total.MemBytes {
			total.MemBytes = p.Counters.MemBytes
		}
		for _, ch := range p.Children {
			walk(ch)
		}
	}
	walk(s)
	return total
}

// NodeCount returns the number of distinct nodes in the stats tree.
func (s *PlanStats) NodeCount() int {
	if s == nil {
		return 0
	}
	seen := make(map[*PlanStats]bool)
	var walk func(p *PlanStats)
	walk = func(p *PlanStats) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, ch := range p.Children {
			walk(ch)
		}
	}
	walk(s)
	return len(seen)
}

// MetricNames returns the sorted metric keys of a metrics map, for
// deterministic rendering and comparison.
func MetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// formatBytes renders a byte count compactly.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"regexp"
)

// Digest returns a short stable hash of a plan's formatted shape, the
// plan-identity key run records and the query log group executions by.
func Digest(s string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunRecord is the machine-readable outcome of one measured run: the
// query, the executed plan shape with its per-operator counters, the
// optimizer span and start-up decisions when available, a flat metrics
// map, and the simulated-cost total CI gates regressions on. The
// benchmark harness writes one record per experiment as BENCH_<name>.json;
// the committed copies are the perf-trajectory baselines cmd/benchdiff
// compares fresh runs against.
type RunRecord struct {
	// Name identifies the record and determines its filename.
	Name string `json:"name"`
	// Query describes the measured query, free-form.
	Query string `json:"query,omitempty"`
	// Metrics are the record's named series (averages, counts, sizes).
	Metrics map[string]float64 `json:"metrics"`
	// SimCostTotal is the headline simulated cost in seconds; CI fails
	// when it regresses more than the tolerance against the committed
	// baseline. Zero means the record carries no gated cost (size-only
	// records), and comparison skips the gate.
	SimCostTotal float64 `json:"sim_cost_total"`
	// Optimizer, Operators, and Decisions attach the full telemetry when
	// the run collected it.
	Optimizer *OptimizerSpan `json:"optimizer,omitempty"`
	Operators *PlanStats     `json:"operators,omitempty"`
	Decisions []ChoiceTrace  `json:"decisions,omitempty"`
	// Admission is the governor's per-query account (grant size, queue
	// wait, degradation) when the query ran governed.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Retries, BranchSwitched, Backoffs, and BackoffTotalNanos carry the
	// resilient executor's recovery account.
	Retries           int   `json:"retries,omitempty"`
	BranchSwitched    bool  `json:"branch_switched,omitempty"`
	Backoffs          int   `json:"backoffs,omitempty"`
	BackoffTotalNanos int64 `json:"backoff_total_ns,omitempty"`
	// PlanDigest is a stable hash of the executed plan's shape, so the
	// query log can group runs that chose the same plan.
	PlanDigest string `json:"plan_digest,omitempty"`
	// Calibration lists the run's interval-calibration verdicts.
	Calibration []CalibrationVerdict `json:"calibration,omitempty"`
	// Reopt lists the mid-query re-optimization decisions the execution
	// took (guard violations and the remedies chosen).
	Reopt []ReoptEvent `json:"reopt,omitempty"`
	// Degrade lists the degradation-ladder steps the execution descended
	// (DOP halvings and the serial fallback).
	Degrade []DegradeEvent `json:"degrade,omitempty"`
	// WallNanos is the query's end-to-end latency; UnixNanos stamps when
	// the record was logged; Error carries the failure text for failed
	// runs in the query log.
	WallNanos int64  `json:"wall_ns,omitempty"`
	UnixNanos int64  `json:"unix_ns,omitempty"`
	Error     string `json:"error,omitempty"`
	// TraceID cross-references the query's span tree in the /traces ring
	// when tracing was enabled for the run.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant names the identity the query ran under; CacheHit reports
	// that the executed plan was served from the shared plan cache.
	Tenant   string `json:"tenant,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Filename returns the record's canonical file name, BENCH_<name>.json.
func (r *RunRecord) Filename() (string, error) {
	if !nameRe.MatchString(r.Name) {
		return "", fmt.Errorf("obs: run record name %q is not filename-safe", r.Name)
	}
	return "BENCH_" + r.Name + ".json", nil
}

// WriteFile writes the record as indented JSON into dir under its
// canonical name.
func (r *RunRecord) WriteFile(dir string) error {
	name, err := r.Filename()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
}

// ReadRecordFile loads a run record from a JSON file.
func ReadRecordFile(path string) (*RunRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("obs: %s has no record name", path)
	}
	return &r, nil
}

// Delta describes one metric's movement between a baseline record and a
// current record.
type Delta struct {
	Record   string  `json:"record"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is current/baseline (0 when the baseline is zero).
	Ratio float64 `json:"ratio"`
	// Gating marks the deltas that fail the comparison (simulated-cost
	// regressions beyond tolerance); other deltas are informational
	// drift.
	Gating bool `json:"gating"`
}

// Compare diffs a current record against its baseline. A simulated-cost
// total more than tolerance above the baseline is a gating regression;
// any metric moving more than tolerance in either direction is reported
// as informational drift.
func Compare(baseline, current *RunRecord, tolerance float64) []Delta {
	var deltas []Delta
	if baseline.SimCostTotal > 0 {
		ratio := current.SimCostTotal / baseline.SimCostTotal
		if ratio > 1+tolerance {
			deltas = append(deltas, Delta{
				Record: baseline.Name, Metric: "sim_cost_total",
				Baseline: baseline.SimCostTotal, Current: current.SimCostTotal,
				Ratio: ratio, Gating: true,
			})
		}
	}
	for _, k := range MetricNames(baseline.Metrics) {
		bv := baseline.Metrics[k]
		cv, ok := current.Metrics[k]
		if !ok {
			deltas = append(deltas, Delta{Record: baseline.Name, Metric: k, Baseline: bv})
			continue
		}
		if bv == 0 {
			if cv != 0 {
				deltas = append(deltas, Delta{Record: baseline.Name, Metric: k, Baseline: bv, Current: cv})
			}
			continue
		}
		ratio := cv / bv
		if ratio > 1+tolerance || ratio < 1-tolerance {
			deltas = append(deltas, Delta{
				Record: baseline.Name, Metric: k,
				Baseline: bv, Current: cv, Ratio: ratio,
			})
		}
	}
	// Metrics the current record carries that the baseline never had —
	// newly added series such as calibration q-errors — are informational
	// drift, never gating: an old baseline must not mask them, and a
	// size-only baseline must not fail on them.
	for _, k := range MetricNames(current.Metrics) {
		if _, ok := baseline.Metrics[k]; ok {
			continue
		}
		if cv := current.Metrics[k]; cv != 0 {
			deltas = append(deltas, Delta{Record: baseline.Name, Metric: k, Current: cv})
		}
	}
	return deltas
}

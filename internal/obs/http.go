package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the workload observatory over stdlib net/http. source is
// consulted per request and returns the live registry (nil while the
// observatory is disabled, which answers 503), so the handler can be
// installed once and survive Enable/Disable cycles. Endpoints:
//
//	/metrics      JSON RegistrySnapshot: counters, gauges, histogram
//	              quantiles, per-operator and per-relation aggregates,
//	              per-stage latency histograms.
//	/calibration  JSON array of CalibrationReports, worst offenders first.
//	/queries      recent run records as JSON lines (application/x-ndjson),
//	              oldest first; ?n=K limits to the newest K.
//	/traces       recent query span trees as JSON lines
//	              (application/x-ndjson), oldest first; ?n=K limits to the
//	              newest K. Bounded by the registry's trace ring.
//
// All endpoints are GET-only (a non-GET method answers 405 with an Allow
// header); unknown routes answer 404. The database layer wraps this as
// (*Database).Handler(), keeping obs free of upward imports.
func Handler(source func() *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		r := source()
		if !r.Enabled() {
			disabled(w)
			return
		}
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("GET /calibration", func(w http.ResponseWriter, req *http.Request) {
		r := source()
		if !r.Enabled() {
			disabled(w)
			return
		}
		reps := r.CalibrationReports()
		if reps == nil {
			reps = []CalibrationReport{}
		}
		writeJSON(w, reps)
	})
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, req *http.Request) {
		r := source()
		if !r.Enabled() {
			disabled(w)
			return
		}
		n, ok := limitParam(w, req)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, rec := range r.RecentQueries(n) {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, req *http.Request) {
		r := source()
		if !r.Enabled() {
			disabled(w)
			return
		}
		n, ok := limitParam(w, req)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, rec := range r.RecentTraces(n) {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
	})
	return mux
}

// limitParam parses the ?n=K limit shared by the ndjson endpoints; on a
// malformed value it answers 400 and reports false.
func limitParam(w http.ResponseWriter, req *http.Request) (int, bool) {
	s := req.URL.Query().Get("n")
	if s == "" {
		return 0, true
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		http.Error(w, "obs: n must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

func disabled(w http.ResponseWriter) {
	http.Error(w, "obs: observatory disabled", http.StatusServiceUnavailable)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram reports count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1234)
	if h.Count() != 1 || h.Sum() != 1234 || h.Max() != 1234 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Every quantile of a one-sample histogram is that sample: the bucket
	// upper bound clamps to the observed max.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 1234 {
			t.Fatalf("Quantile(%g) = %g, want 1234", q, got)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{4095, 12}, {4096, 13}, {4097, 13},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// bucketHi is the inclusive upper bound: bucketOf(bucketHi(b)) == b.
	// Bucket 64 is unreachable for int64 samples (bucketHi clamps to
	// MaxInt64, which lives in bucket 63), so stop at 63.
	for b := 1; b < 64; b++ {
		if got := bucketOf(bucketHi(b)); got != b {
			t.Errorf("bucketOf(bucketHi(%d)) = %d, want %d", b, got, b)
		}
	}
	if bucketHi(0) != 0 {
		t.Errorf("bucketHi(0) = %d, want 0", bucketHi(0))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples and 10 slow ones: p50 must land in the fast bucket,
	// p95 and p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Record(100)
	}
	for i := 0; i < 10; i++ {
		h.Record(100000)
	}
	if p50 := h.Quantile(0.50); p50 > 255 {
		t.Errorf("p50 = %g, want within the fast bucket (<= 255)", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 100000 {
		t.Errorf("p99 = %g, want 100000 (clamped to max)", p99)
	}
	if h.Quantile(1) != 100000 {
		t.Errorf("Quantile(1) = %g, want exact max 100000", h.Quantile(1))
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Record(seed*1000 + i)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != workers*1000+per-1 {
		t.Fatalf("max = %d, want %d", h.Max(), workers*1000+per-1)
	}
}

func TestDisabledRegistryAllocatesNothing(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordQuery(QuerySample{WallNanos: 42, Rows: 1})
		r.RecordShed()
		r.RecordBreakerTrip()
		r.RecordOperators(nil)
		r.RecordCalibration(nil)
		r.LogQuery(nil)
		c.Add(1)
		g.Set(64)
		h.Record(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocated %.1f per run, want 0", allocs)
	}
}

func TestNilRegistryReadsAreSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports Enabled")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot not nil")
	}
	if r.CalibrationReports() != nil {
		t.Fatal("nil registry CalibrationReports not nil")
	}
	if r.RecentQueries(0) != nil {
		t.Fatal("nil registry RecentQueries not nil")
	}
}

func TestRegistryRecordQuery(t *testing.T) {
	r := NewRegistry(0)
	r.RecordQuery(QuerySample{WallNanos: 1000, Rows: 5, SeqPageReads: 10, RandPageReads: 2, Retries: 1})
	r.RecordQuery(QuerySample{WallNanos: 9000, Failed: true})
	r.RecordShed()
	s := r.Snapshot()
	if s.Queries != 2 || s.Errors != 1 || s.Sheds != 1 || s.Retries != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.LatencyNanos.Count != 2 {
		t.Fatalf("latency count = %d, want 2", s.LatencyNanos.Count)
	}
	// Failed queries contribute latency but not I/O or row volume.
	if s.PagesRead.Count != 1 || s.PagesRead.Sum != 12 || s.RowsOut.Sum != 5 {
		t.Fatalf("pages_read %+v rows_out %+v", s.PagesRead, s.RowsOut)
	}
}

func TestRegistryRecordOperators(t *testing.T) {
	r := NewRegistry(0)
	shared := &PlanStats{Op: "file-scan", Rel: "E1", Counters: Counters{Rows: 7, SeqPageReads: 3}}
	tree := &PlanStats{
		Op:       "nl-join",
		Counters: Counters{Rows: 2},
		Children: []*PlanStats{shared, shared}, // shared node charged once
	}
	r.RecordOperators(tree)
	s := r.Snapshot()
	if s.Operators["file-scan"].Executions != 1 {
		t.Fatalf("shared scan charged %d times, want 1", s.Operators["file-scan"].Executions)
	}
	if s.Operators["nl-join"].Counters.Rows != 2 {
		t.Fatalf("join rows = %d", s.Operators["nl-join"].Counters.Rows)
	}
	if s.Relations["E1"].Counters.SeqPageReads != 3 {
		t.Fatalf("relation aggregate %+v", s.Relations["E1"])
	}
}

func TestQErrorVerdicts(t *testing.T) {
	cases := []struct {
		lo, hi, actual float64
		wantQ          float64
		wantViolation  bool
	}{
		{10, 100, 50, 1, false},
		{10, 100, 10, 1, false},  // boundary: inclusive
		{10, 100, 100, 1, false}, // boundary: inclusive
		{10, 100, 400, 4, true},  // above by 4x
		{10, 100, 2, 5, true},    // below: 10/2
		{0, 0, 0, 1, false},      // degenerate zero interval
		{0, 0.5, 3, 3, true},     // 1-floored hi
	}
	for _, c := range cases {
		q, viol := qError(c.lo, c.hi, c.actual)
		if q != c.wantQ || viol != c.wantViolation {
			t.Errorf("qError(%g,%g,%g) = (%g,%v), want (%g,%v)",
				c.lo, c.hi, c.actual, q, viol, c.wantQ, c.wantViolation)
		}
	}
}

func TestCalibrateTreeAndPlanCost(t *testing.T) {
	scan := &PlanStats{
		Op: "file-scan", Rel: "E1",
		Counters:  Counters{Rows: 400},
		Predicted: &Prediction{CardLo: 50, CardHi: 100},
	}
	root := &PlanStats{Op: "select", Counters: Counters{Rows: 400}, Children: []*PlanStats{scan}}
	verdicts := Calibrate(root, 1.0, 2.0, 8.0)
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2 (one cardinality, one cost)", len(verdicts))
	}
	card := verdicts[0]
	if card.Kind != "cardinality" || card.Rel != "E1" || card.QError != 4 || !card.Violation {
		t.Fatalf("cardinality verdict %+v", card)
	}
	if !scan.Violation || scan.QError != 4 {
		t.Fatalf("node not annotated: q=%g violation=%v", scan.QError, scan.Violation)
	}
	costV := verdicts[1]
	if costV.Kind != "cost" || costV.QError != 4 || !costV.Violation || costV.Label != "plan" {
		t.Fatalf("cost verdict %+v", costV)
	}
}

func TestCalibrationReportsSorted(t *testing.T) {
	r := NewRegistry(0)
	r.RecordCalibration([]CalibrationVerdict{
		{Kind: "cardinality", Op: "file-scan", Rel: "A", QError: 2, Violation: true},
		{Kind: "cardinality", Op: "file-scan", Rel: "B", QError: 16, Violation: true},
		{Kind: "cardinality", Op: "file-scan", Rel: "C", QError: 1},
	})
	reps := r.CalibrationReports()
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	if reps[0].Rel != "B" || reps[0].MaxQError != 16 {
		t.Fatalf("worst offender first: got %+v", reps[0])
	}
	if reps[2].Rel != "C" || reps[2].Violations != 0 {
		t.Fatalf("clean relation last: got %+v", reps[2])
	}
	if r.Violations.Load() != 2 || r.WorstQError.Load() != 16 {
		t.Fatalf("violations=%d worst=%g", r.Violations.Load(), r.WorstQError.Load())
	}
}

func TestQueryLogRingWrap(t *testing.T) {
	r := NewRegistry(4)
	for i := 0; i < 10; i++ {
		r.LogQuery(&RunRecord{Name: fmt.Sprintf("q%d", i)})
	}
	got := r.RecentQueries(0)
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("q%d", 6+i); rec.Name != want {
			t.Fatalf("record %d = %s, want %s (oldest first)", i, rec.Name, want)
		}
	}
	if newest := r.RecentQueries(2); len(newest) != 2 || newest[1].Name != "q9" {
		t.Fatalf("RecentQueries(2) = %v", newest)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(4)
	g.SetMax(2)
	if g.Load() != 4 {
		t.Fatalf("gauge = %g, want 4", g.Load())
	}
	g.Set(1)
	if g.Load() != 1 {
		t.Fatalf("Set does not override: %g", g.Load())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry(0)
	reg.RecordQuery(QuerySample{WallNanos: 1000, Rows: 3})
	reg.RecordCalibration([]CalibrationVerdict{
		{Kind: "cardinality", Op: "file-scan", Rel: "E1", QError: 4, Violation: true},
	})
	reg.LogQuery(&RunRecord{Name: "q0"})
	reg.LogQuery(&RunRecord{Name: "q1"})
	h := Handler(func() *Registry { return reg })

	srv := httptest.NewServer(h)
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		var snap RegistrySnapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if snap.Queries != 1 || snap.Violations != 1 {
			t.Fatalf("snapshot %+v", snap)
		}
	})
	t.Run("calibration", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/calibration", nil))
		var reps []CalibrationReport
		if err := json.Unmarshal(rr.Body.Bytes(), &reps); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(reps) != 1 || reps[0].Rel != "E1" {
			t.Fatalf("reports %+v", reps)
		}
	})
	t.Run("queries", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/queries?n=1", nil))
		if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		lines := strings.Split(strings.TrimSpace(rr.Body.String()), "\n")
		if len(lines) != 1 {
			t.Fatalf("got %d lines, want 1", len(lines))
		}
		var rec RunRecord
		if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Name != "q1" {
			t.Fatalf("line %q err %v", lines[0], err)
		}
	})
	t.Run("bad-n", func(t *testing.T) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/queries?n=-3", nil))
		if rr.Code != 400 {
			t.Fatalf("status %d, want 400", rr.Code)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		off := Handler(func() *Registry { return nil })
		for _, path := range []string{"/metrics", "/calibration", "/queries"} {
			rr := httptest.NewRecorder()
			off.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
			if rr.Code != 503 {
				t.Fatalf("%s status %d, want 503", path, rr.Code)
			}
		}
	})
}

func TestCompareReportsCurrentOnlyMetrics(t *testing.T) {
	base := &RunRecord{Name: "r", Metrics: map[string]float64{"rows": 10}, SimCostTotal: 1}
	cur := &RunRecord{Name: "r", Metrics: map[string]float64{"rows": 10, "q-error-max": 4}, SimCostTotal: 1}
	deltas := Compare(base, cur, 0.1)
	var found bool
	for _, d := range deltas {
		if d.Metric == "q-error-max" {
			found = true
			if d.Gating {
				t.Fatalf("current-only metric gated: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("current-only metric not reported")
	}
}

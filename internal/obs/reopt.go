package obs

import (
	"fmt"
	"strings"
)

// ReoptEvent is one mid-query re-optimization decision: a cardinality
// guard tripped (or the budget ran out) and the controller chose a remedy.
// Events ride the ExecResult and the query-log run record, so the
// /queries trace and ExplainAnalyze both show what happened mid-flight.
type ReoptEvent struct {
	// Stage is the remedy taken: "violation" (the guard observation
	// itself), "switch" (re-activated onto a surviving choose-plan
	// alternative), "replan" (re-entered the optimizer with the
	// materialized temp as a base relation), or "degrade" (budget
	// exhausted; finishing the current plan over the temp).
	Stage string `json:"stage"`
	// Op labels the plan operator whose materialization tripped the
	// guard; Rel names the base relation the violated subtree reads —
	// the handle that pins a stale catalog entry to its relation.
	Op  string `json:"op,omitempty"`
	Rel string `json:"rel,omitempty"`
	// Observed is the row count the materialization produced;
	// PredictedLo and PredictedHi the band the cost model promised;
	// QError the miss factor (see BandCheck).
	Observed    float64 `json:"observed"`
	PredictedLo float64 `json:"predicted_lo"`
	PredictedHi float64 `json:"predicted_hi"`
	QError      float64 `json:"q_error"`
	// Attempt is the 1-based re-optimization attempt this event belongs
	// to; PlanningNanos the optimizer time a replan spent.
	Attempt       int   `json:"attempt"`
	PlanningNanos int64 `json:"planning_ns,omitempty"`
	// Note carries the human-readable decision rationale.
	Note string `json:"note,omitempty"`
}

// RenderReoptEvents renders the re-optimization trace as the REOPT lines
// ExplainAnalyze appends.
func RenderReoptEvents(events []ReoptEvent) string {
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString("REOPT ")
		b.WriteString(e.Stage)
		if e.Op != "" {
			fmt.Fprintf(&b, " at %s", e.Op)
		}
		if e.Rel != "" {
			fmt.Fprintf(&b, " [%s]", e.Rel)
		}
		fmt.Fprintf(&b, ": observed %.0f rows vs predicted [%.3g, %.3g] (q-error %.3g, attempt %d)",
			e.Observed, e.PredictedLo, e.PredictedHi, e.QError, e.Attempt)
		if e.PlanningNanos > 0 {
			fmt.Fprintf(&b, " planning=%dns", e.PlanningNanos)
		}
		if e.Note != "" {
			b.WriteString(" — ")
			b.WriteString(e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

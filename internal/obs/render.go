package obs

import (
	"fmt"
	"strings"
	"time"
)

// Render formats the stats tree as an EXPLAIN ANALYZE-style annotated
// plan: each operator line carries its observed rows, page I/O, tuple
// work, wall time, simulated time under the supplied rates, and buffered
// memory high-water where applicable. I/O and time figures are inclusive
// of the operator's inputs; rows are the operator's own output.
func (s *PlanStats) Render(r CostRates) string {
	var b strings.Builder
	seen := make(map[*PlanStats]bool)
	s.render(&b, 0, r, seen)
	return b.String()
}

func (s *PlanStats) render(b *strings.Builder, depth int, r CostRates, seen map[*PlanStats]bool) {
	indent := strings.Repeat("  ", depth)
	if seen[s] {
		fmt.Fprintf(b, "%s%s (shared, shown above)\n", indent, s.Label)
		return
	}
	seen[s] = true
	c := s.Counters
	fmt.Fprintf(b, "%s%s\n", indent, s.Label)
	fmt.Fprintf(b, "%s  (rows=%d next=%d seq=%d rand=%d write=%d tuples=%d wall=%s sim=%.4gs",
		indent, c.Rows, c.NextCalls, c.SeqPageReads, c.RandPageReads, c.PageWrites,
		c.TupleOps, time.Duration(c.WallNanos).Round(time.Microsecond), c.SimulatedSeconds(r))
	if c.MemBytes > 0 {
		fmt.Fprintf(b, " mem=%s", formatBytes(c.MemBytes))
	}
	if c.FaultsAbsorbed > 0 {
		fmt.Fprintf(b, " faults-absorbed=%d", c.FaultsAbsorbed)
	}
	if p := s.Predicted; p != nil {
		fmt.Fprintf(b, " pred-rows=[%.4g,%.4g]", p.CardLo, p.CardHi)
		if s.QError > 1 {
			fmt.Fprintf(b, " q-err=%.3g", s.QError)
		}
		if s.Violation {
			b.WriteString(" VIOLATION")
		}
	}
	b.WriteString(")\n")
	for _, ch := range s.Children {
		ch.render(b, depth+1, r, seen)
	}
}

package obs

import "testing"

// TestBandCheckVerdict pins the shared band logic both the post-run
// calibration table and the mid-query cardinality guards reduce to: the
// q-error is 1 inside the band, the miss ratio outside, 1-floored on both
// sides, with inverted bands normalized.
func TestBandCheckVerdict(t *testing.T) {
	cases := []struct {
		name     string
		band     BandCheck
		actual   float64
		wantQ    float64
		wantViol bool
	}{
		{"inside", BandCheck{Lo: 10, Hi: 20}, 15, 1, false},
		{"at-lo", BandCheck{Lo: 10, Hi: 20}, 10, 1, false},
		{"at-hi", BandCheck{Lo: 10, Hi: 20}, 20, 1, false},
		{"below", BandCheck{Lo: 10, Hi: 20}, 5, 2, true},
		{"above", BandCheck{Lo: 10, Hi: 20}, 80, 4, true},
		{"zero-actual-floored", BandCheck{Lo: 10, Hi: 20}, 0, 10, true},
		{"zero-band-floored", BandCheck{Lo: 0, Hi: 0}, 7, 7, true},
		{"inverted-band", BandCheck{Lo: 20, Hi: 10}, 15, 1, false},
		{"inverted-band-miss", BandCheck{Lo: 20, Hi: 10}, 40, 2, true},
		{"point-band", BandCheck{Lo: 170, Hi: 170}, 680, 4, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, viol := c.band.Verdict(c.actual)
			if q != c.wantQ || viol != c.wantViol {
				t.Errorf("Verdict(%v) = (%g, %v), want (%g, %v)",
					c.actual, q, viol, c.wantQ, c.wantViol)
			}
			if got := c.band.Contains(c.actual); got == c.wantViol {
				t.Errorf("Contains(%v) = %v, inconsistent with violation %v",
					c.actual, got, c.wantViol)
			}
		})
	}
}

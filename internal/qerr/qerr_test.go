package qerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context not classified: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("original context error lost: %v", err)
	}
	if !Canceled(err) {
		t.Error("Canceled(err) = false")
	}

	derr := FromContext(context.DeadlineExceeded)
	if !errors.Is(derr, ErrDeadlineExceeded) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("deadline error not classified: %v", derr)
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	plain := errors.New("not a context error")
	if FromContext(plain) != plain {
		t.Error("non-context error must pass through unchanged")
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(fmt.Errorf("wrapped: %w", ErrTransientIO)) {
		t.Error("transient I/O must be retryable")
	}
	if !Retryable(ErrInsufficientMemory) {
		t.Error("insufficient memory must be retryable")
	}
	for _, err := range []error{ErrCanceled, ErrDeadlineExceeded, ErrPermanentIO, ErrOperatorPanic, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
}

func TestAt(t *testing.T) {
	if At("op", nil) != nil {
		t.Error("At(nil) must be nil")
	}
	inner := At("File-Scan R1", ErrTransientIO)
	if Operator(inner) != "File-Scan R1" {
		t.Errorf("Operator = %q", Operator(inner))
	}
	// Outer wrapping must not override the innermost operator.
	outer := At("Hash-Join R1.k = R2.k", inner)
	if Operator(outer) != "File-Scan R1" {
		t.Errorf("innermost operator lost: %q", Operator(outer))
	}
	if !errors.Is(outer, ErrTransientIO) {
		t.Error("classification lost through OpError")
	}
	// Cancellation is never attributed to an operator.
	canceled := At("Sort R1.a", FromContext(context.Canceled))
	if Operator(canceled) != "" {
		t.Errorf("cancellation attributed to operator %q", Operator(canceled))
	}
	if Operator(errors.New("plain")) != "" {
		t.Error("plain error has an operator")
	}
}

func TestRelationAttribution(t *testing.T) {
	inner := AtRel("File-Scan R2", "R2", fmt.Errorf("page 7: %w", ErrPermanentIO))
	if Relation(inner) != "R2" {
		t.Errorf("Relation = %q", Relation(inner))
	}
	// Outer wrapping — another operator, retry decoration — must not
	// override the innermost attribution, and must keep the taxonomy.
	outer := fmt.Errorf("gave up after 5 attempts: %w",
		AtRel("Hash-Join R1.k = R2.k", "", inner))
	if Relation(outer) != "R2" {
		t.Errorf("innermost relation lost: %q", Relation(outer))
	}
	if Operator(outer) != "File-Scan R2" {
		t.Errorf("innermost operator lost: %q", Operator(outer))
	}
	if !errors.Is(outer, ErrPermanentIO) {
		t.Error("classification lost through wrapping")
	}
	var oe *OpError
	if !errors.As(outer, &oe) || oe.Rel != "R2" || oe.Op != "File-Scan R2" {
		t.Errorf("errors.As round-trip: %+v", oe)
	}
	// Compute operators carry no relation.
	if Relation(At("Sort R1.a", ErrInsufficientMemory)) != "" {
		t.Error("At attributed a relation")
	}
	if Relation(errors.New("plain")) != "" {
		t.Error("plain error has a relation")
	}
}

func TestGovernorSentinels(t *testing.T) {
	shed := fmt.Errorf("governor: queue full: %w", ErrAdmission)
	if !errors.Is(shed, ErrAdmission) {
		t.Error("wrapped admission rejection lost its sentinel")
	}
	if Retryable(shed) || Canceled(shed) {
		t.Error("admission rejection misclassified as retryable or canceled")
	}
	if Operator(shed) != "" || Relation(shed) != "" {
		t.Error("admission rejection attributed to an operator or relation")
	}
	// ErrCircuitOpen wraps alongside an underlying infeasibility cause;
	// both must stay matchable.
	cause := errors.New("plan: no feasible alternative")
	tripped := fmt.Errorf("circuit breaker excludes [R1]: %w: %w", ErrCircuitOpen, cause)
	if !errors.Is(tripped, ErrCircuitOpen) || !errors.Is(tripped, cause) {
		t.Error("double-wrapped circuit-open error lost a branch")
	}
	if Retryable(tripped) || Canceled(tripped) {
		t.Error("circuit-open misclassified")
	}
}

package qerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context not classified: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("original context error lost: %v", err)
	}
	if !Canceled(err) {
		t.Error("Canceled(err) = false")
	}

	derr := FromContext(context.DeadlineExceeded)
	if !errors.Is(derr, ErrDeadlineExceeded) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("deadline error not classified: %v", derr)
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	plain := errors.New("not a context error")
	if FromContext(plain) != plain {
		t.Error("non-context error must pass through unchanged")
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(fmt.Errorf("wrapped: %w", ErrTransientIO)) {
		t.Error("transient I/O must be retryable")
	}
	if !Retryable(ErrInsufficientMemory) {
		t.Error("insufficient memory must be retryable")
	}
	for _, err := range []error{ErrCanceled, ErrDeadlineExceeded, ErrPermanentIO, ErrOperatorPanic, errors.New("other")} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
}

func TestAt(t *testing.T) {
	if At("op", nil) != nil {
		t.Error("At(nil) must be nil")
	}
	inner := At("File-Scan R1", ErrTransientIO)
	if Operator(inner) != "File-Scan R1" {
		t.Errorf("Operator = %q", Operator(inner))
	}
	// Outer wrapping must not override the innermost operator.
	outer := At("Hash-Join R1.k = R2.k", inner)
	if Operator(outer) != "File-Scan R1" {
		t.Errorf("innermost operator lost: %q", Operator(outer))
	}
	if !errors.Is(outer, ErrTransientIO) {
		t.Error("classification lost through OpError")
	}
	// Cancellation is never attributed to an operator.
	canceled := At("Sort R1.a", FromContext(context.Canceled))
	if Operator(canceled) != "" {
		t.Errorf("cancellation attributed to operator %q", Operator(canceled))
	}
	if Operator(errors.New("plain")) != "" {
		t.Error("plain error has an operator")
	}
}

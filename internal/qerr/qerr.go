// Package qerr is the typed error taxonomy of the execution layer.
//
// The paper's dynamic plans encode *alternatives*; turning that into
// run-time robustness requires failures the system can reason about. Every
// mid-query failure the engine can produce is classified into one of the
// sentinel errors below, so callers (most importantly the retrying
// fallback executor in the root package) can decide between retrying the
// same plan, re-resolving a choose-plan operator to a sibling branch under
// downgraded bindings, or giving up:
//
//   - ErrCanceled / ErrDeadlineExceeded: the caller's context ended; never
//     retried.
//   - ErrTransientIO: a page read failed but is expected to succeed when
//     reissued (the fault-injection substrate heals transient faults after
//     a bounded number of touches). Retrying the same plan makes progress.
//   - ErrInsufficientMemory: the run-time memory grant shrank below what a
//     memory-hungry operator (hash-join build, sort) needs. Retrying the
//     same plan cannot help; re-resolving the choose-plan against reduced
//     memory bindings selects a branch that can run.
//   - ErrPermanentIO / ErrFaultInjected: an unrecoverable storage fault;
//     only a branch that avoids the poisoned access path can succeed.
//   - ErrOperatorPanic: an operator panicked; the executor boundary
//     converts the panic into this typed error instead of crashing the
//     process.
//
// Failures are additionally wrapped in an OpError naming the plan operator
// that raised them (e.g. "Hash-Join R1.jh = R2.jl"), so diagnostics point
// at the failing plan node rather than at the executor as a whole.
package qerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the execution layer. Match with errors.Is: wrapping
// layers (OpError, fmt.Errorf("%w")) preserve the classification.
var (
	// ErrCanceled reports that the caller's context was canceled
	// mid-query. Errors wrapping it also wrap context.Canceled.
	ErrCanceled = errors.New("qerr: execution canceled")
	// ErrDeadlineExceeded reports that the caller's deadline passed
	// mid-query. Errors wrapping it also wrap context.DeadlineExceeded.
	ErrDeadlineExceeded = errors.New("qerr: execution deadline exceeded")
	// ErrInsufficientMemory reports that the memory available at run-time
	// shrank below what an operator needs.
	ErrInsufficientMemory = errors.New("qerr: insufficient memory")
	// ErrTransientIO reports a page read that failed transiently; the
	// read is expected to succeed when reissued.
	ErrTransientIO = errors.New("qerr: transient I/O error")
	// ErrPermanentIO reports an unrecoverable page-read failure.
	ErrPermanentIO = errors.New("qerr: permanent I/O error")
	// ErrFaultInjected marks every error produced by the fault-injection
	// substrate, transient or permanent, so tests and the harness can
	// distinguish injected faults from organic ones.
	ErrFaultInjected = errors.New("qerr: injected fault")
	// ErrOperatorPanic reports an operator panic converted to an error at
	// the executor boundary.
	ErrOperatorPanic = errors.New("qerr: operator panic")
	// ErrAdmission reports that the resource governor refused to run the
	// query: the admission queue was full, or the queue-wait (or grant-wait)
	// budget expired before a slot or a memory grant freed up. The query
	// never started executing; resubmitting under lighter load can succeed.
	ErrAdmission = errors.New("qerr: admission rejected")
	// ErrCircuitOpen reports that a per-relation circuit breaker — tripped
	// by repeated permanent faults on that relation — excluded every plan
	// alternative, so execution failed fast instead of burning retries
	// against a poisoned access path.
	ErrCircuitOpen = errors.New("qerr: circuit breaker open")
	// ErrCardinalityViolation reports that a mid-query cardinality guard
	// observed a row count outside the cost model's predicted band at a
	// materialization point. The re-optimization stage consumes it (switch,
	// re-plan, or degrade); it surfaces to callers only when no re-opt
	// policy is active to remedy it.
	ErrCardinalityViolation = errors.New("qerr: cardinality outside predicted band")
	// ErrNoProgress reports that the progress watchdog observed no tuples
	// advancing for longer than the configured no-progress timeout: the
	// query is stuck, not slow. Unlike a deadline it is attributed to the
	// operator that was polled when the stall was detected.
	ErrNoProgress = errors.New("qerr: no progress")
)

// Retryable reports whether re-executing can plausibly succeed: transient
// I/O errors (retry the same plan) and insufficient memory (retry a
// different branch under downgraded bindings). Cancellation, deadlines,
// permanent I/O errors, and panics are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransientIO) || errors.Is(err, ErrInsufficientMemory)
}

// Class names the taxonomy class an error falls into — the stable label
// degradation events and diagnostics carry. The checks run most-specific
// first, so an error wrapping several sentinels (an injected fault wraps
// ErrFaultInjected and its transient/permanent kind) reports its kind.
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrNoProgress):
		return "no-progress"
	case errors.Is(err, ErrCardinalityViolation):
		return "cardinality"
	case errors.Is(err, ErrInsufficientMemory):
		return "insufficient-memory"
	case errors.Is(err, ErrTransientIO):
		return "transient-io"
	case errors.Is(err, ErrPermanentIO):
		return "permanent-io"
	case errors.Is(err, ErrOperatorPanic):
		return "operator-panic"
	case errors.Is(err, ErrAdmission):
		return "admission"
	case errors.Is(err, ErrCircuitOpen):
		return "circuit-open"
	default:
		return "unclassified"
	}
}

// Canceled reports whether the error stems from context cancellation or
// expiry, directly or wrapped.
func Canceled(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
}

// FromContext converts a context error into the taxonomy. The result
// wraps both the sentinel (ErrCanceled / ErrDeadlineExceeded) and the
// original context error, so errors.Is works against either. A nil or
// non-context error is returned unchanged.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return err
	}
}

// OpError attaches the plan operator that raised a failure. The executor
// wraps every iterator's errors, innermost operator first; At leaves an
// existing OpError untouched, so the operator named is the one closest to
// the failure.
type OpError struct {
	// Op describes the failing plan operator ("File-Scan R1", …).
	Op string
	// Rel is the base relation the failing operator reads, when it reads
	// one ("" for pure compute operators). The per-relation circuit breaker
	// keys on it.
	Rel string
	// Err is the underlying failure.
	Err error
}

// Error renders "operator: cause".
func (e *OpError) Error() string { return e.Op + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *OpError) Unwrap() error { return e.Err }

// At wraps err with the operator description, unless err is nil or
// already carries an operator (the innermost — most precise — operator
// wins). Context-derived errors are left unwrapped too: cancellation is a
// property of the whole execution, not of the operator that happened to
// poll it.
func At(op string, err error) error {
	return AtRel(op, "", err)
}

// AtRel is At carrying the base relation the operator reads, so failures
// can be attributed to a relation (see Relation) as well as an operator.
func AtRel(op, rel string, err error) error {
	if err == nil {
		return nil
	}
	var oe *OpError
	if errors.As(err, &oe) || Canceled(err) {
		return err
	}
	return &OpError{Op: op, Rel: rel, Err: err}
}

// Operator returns the plan operator a failure was raised at, or "" when
// the error carries none.
func Operator(err error) string {
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.Op
	}
	return ""
}

// Relation returns the base relation the failing operator was reading, or
// "" when the error carries none — compute operators, cancellation, and
// governor rejections have no relation.
func Relation(err error) string {
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.Rel
	}
	return ""
}

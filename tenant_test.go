package dynplan

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynplan/internal/harness"
)

// TestTenantFairnessUnderFlood is the fairness acceptance: tenant A
// floods the service from many goroutines while tenant B issues a
// steady sequential trickle. With per-tenant admission slots, A's
// excess queues against its own gate — never the shared queue — so B's
// queue waits stay bounded and none of B's queries are shed.
func TestTenantFairnessUnderFlood(t *testing.T) {
	e := newObsEnv(t)
	e.db.SetGovernor(GovernorConfig{
		TotalPages:    256,
		MinGrantPages: 8,
		MaxConcurrent: 4,
		MaxQueued:     16,
		TenantSlots:   2,
		QueueTimeout:  10 * time.Second,
	})
	p, err := e.db.Prepare(e.q)
	if err != nil {
		t.Fatal(err)
	}
	opts := func(tenant string) ExecOptions {
		return ExecOptions{Governed: true, Tenant: tenant}
	}

	const (
		floodWorkers = 8
		floodPerG    = 20
		trickle      = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < floodPerG; i++ {
				if _, err := p.Exec(context.Background(), e.binds, opts("flood")); err != nil {
					t.Errorf("tenant flood: %v", err)
					return
				}
			}
		}()
	}

	waits := make([]int64, 0, trickle)
	for i := 0; i < trickle; i++ {
		res, err := p.Exec(context.Background(), e.binds, opts("steady"))
		if err != nil {
			t.Fatalf("tenant steady query %d: %v", i, err)
		}
		if res.Tenant != "steady" {
			t.Fatalf("result tenant = %q, want steady", res.Tenant)
		}
		waits = append(waits, res.Admission.QueueWaitNanos)
	}
	wg.Wait()

	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	p95 := waits[len(waits)*95/100]
	// Starvation behind an unbounded flood would be seconds; with the
	// tenant gate holding A to 2 of the 4 global slots, B contends with
	// at most two flood queries per arrival.
	if limit := int64(250 * time.Millisecond); p95 > limit {
		t.Errorf("steady tenant p95 queue wait = %v, want < %v",
			time.Duration(p95), time.Duration(limit))
	}

	gs := e.db.GovernorStats()
	steady, flood := gs.Tenants["steady"], gs.Tenants["flood"]
	if steady.ShedGate != 0 || steady.ShedTimeout != 0 {
		t.Errorf("steady tenant was shed: %+v", steady)
	}
	if steady.Admitted != trickle || steady.Completed != trickle {
		t.Errorf("steady tenant admissions = %+v, want %d admitted and completed", steady, trickle)
	}
	if flood.Admitted != flood.Completed || flood.Admitted != floodWorkers*floodPerG {
		t.Errorf("flood tenant admissions = %+v, want %d", flood, floodWorkers*floodPerG)
	}
	if flood.InFlight != 0 || flood.OutstandingPages != 0 ||
		steady.InFlight != 0 || steady.OutstandingPages != 0 {
		t.Errorf("tenant occupancy after drain: flood %+v, steady %+v", flood, steady)
	}
	if out := e.db.OutstandingGrantPages(); out != 0 {
		t.Errorf("outstanding grant pages = %v, want 0", out)
	}
}

// TestPreparedMultiTenantSoak is the PR's acceptance soak: 1000
// concurrent prepared executions across 4 tenants through the shared
// plan cache, with an Analyze pass invalidating every cached plan
// mid-flight. Answers stay digest-identical to uncached compilation,
// the governor's and broker's books balance, no goroutines or grants
// leak, and the cache hit rate and per-tenant admission stats surface
// in the metrics snapshot.
func TestPreparedMultiTenantSoak(t *testing.T) {
	e := newObsEnv(t)

	// Uncached baselines per binding set, before the observatory starts
	// counting.
	sels := []float64{0.05, 0.1, 0.3, 0.6}
	baseline := make([]string, len(sels))
	bindings := make([]Bindings, len(sels))
	for i, sel := range sels {
		b := Bindings{Selectivities: map[string]float64{}, MemoryPages: 32}
		for v := 1; v <= 3; v++ {
			b.Selectivities[fmt.Sprintf("v%d", v)] = sel
		}
		bindings[i] = b
		baseline[i] = normalizeResult(coldExec(t, e.sys, e.db, e.q, b))
	}

	e.db.EnableObservatory()
	defer e.db.DisableObservatory()
	e.db.SetGovernor(GovernorConfig{
		TotalPages:    512,
		MinGrantPages: 8,
		MaxConcurrent: 8,
		MaxQueued:     64,
		TenantSlots:   2,
		TenantPages:   128,
		QueueTimeout:  30 * time.Second,
	})
	p, err := e.db.Prepare(e.q)
	if err != nil {
		t.Fatal(err)
	}

	const (
		tenants    = 4
		workersPer = 2
		iters      = 125 // 4 × 2 × 125 = 1000 executions
	)
	names := []string{"alpha", "beta", "gamma", "delta"}
	before := harness.StableGoroutines()

	var done atomic.Int64
	var analyzeOnce sync.Once
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		for w := 0; w < workersPer; w++ {
			wg.Add(1)
			go func(tenant string, w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					bi := (i + w) % len(bindings)
					res, err := p.Exec(context.Background(), bindings[bi],
						ExecOptions{Governed: true, Tenant: tenant})
					if err != nil {
						t.Errorf("tenant %s iter %d: %v", tenant, i, err)
						return
					}
					if res.Tenant != tenant {
						t.Errorf("result tenant = %q, want %q", res.Tenant, tenant)
						return
					}
					if got := normalizeResult(res); got != baseline[bi] {
						t.Errorf("tenant %s iter %d (sel %g): cached answers diverged from cold compile",
							tenant, i, sels[bi])
						return
					}
					// Mid-soak statistics refresh: every cached plan
					// compiled so far is invalidated; the soak must sail
					// through the recompile without wrong answers.
					if done.Add(1) == tenants*workersPer*iters/2 {
						analyzeOnce.Do(func() {
							if err := e.db.Analyze(64); err != nil {
								t.Errorf("mid-soak Analyze: %v", err)
							}
						})
					}
				}
			}(names[ti], w)
		}
	}
	wg.Wait()

	total := int64(tenants * workersPer * iters)
	if got := done.Load(); got != total {
		t.Fatalf("soak ran %d executions, want %d", got, total)
	}
	if v := e.db.CatalogVersion(); v != 2 {
		t.Errorf("catalog version after mid-soak Analyze = %d, want 2", v)
	}

	// Cache effectiveness: one compile at Prepare, one after the
	// invalidation (plus at most a handful of stale-key stragglers);
	// everything else hits. The acceptance bar is a > 0.9 hit rate.
	cs := e.db.PlanCacheStats()
	if cs.Misses < 2 || cs.Misses > 10 {
		t.Errorf("plan cache misses = %d, want 2 (Prepare + post-Analyze recompile) ± stragglers", cs.Misses)
	}
	if rate := float64(cs.Hits) / float64(cs.Hits+cs.Misses); rate <= 0.9 {
		t.Errorf("plan cache hit rate = %.3f (%+v), want > 0.9", rate, cs)
	}

	// Governor books balance per tenant and globally.
	gs := e.db.GovernorStats()
	if len(gs.Tenants) != tenants {
		t.Fatalf("governor tracked %d tenants, want %d: %+v", len(gs.Tenants), tenants, gs.Tenants)
	}
	for _, name := range names {
		ts := gs.Tenants[name]
		if ts.Admitted != int64(workersPer*iters) || ts.Completed != ts.Admitted {
			t.Errorf("tenant %s admissions = %+v, want %d admitted and completed",
				name, ts, workersPer*iters)
		}
		if ts.ShedGate != 0 || ts.ShedTimeout != 0 || ts.InFlight != 0 || ts.OutstandingPages != 0 {
			t.Errorf("tenant %s not drained clean: %+v", name, ts)
		}
	}
	if out := e.db.OutstandingGrantPages(); out != 0 {
		t.Errorf("outstanding grant pages = %v, want 0", out)
	}
	if after := harness.StableGoroutines(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d across the soak", before, after)
	}

	// The observatory surfaces the soak: per-tenant admission, cache
	// counters, and the activation-latency histogram.
	snap := e.db.MetricsSnapshot()
	if snap == nil {
		t.Fatal("no metrics snapshot")
	}
	if len(snap.Tenants) != tenants {
		t.Fatalf("metrics tenants = %d, want %d", len(snap.Tenants), tenants)
	}
	var tenantQueries int64
	for name, agg := range snap.Tenants {
		if agg.Queries != int64(workersPer*iters) {
			t.Errorf("metrics tenant %s queries = %d, want %d", name, agg.Queries, workersPer*iters)
		}
		if agg.QueueWait.Count != agg.Queries {
			t.Errorf("metrics tenant %s queue-wait count = %d, want %d",
				name, agg.QueueWait.Count, agg.Queries)
		}
		tenantQueries += agg.Queries
	}
	if tenantQueries != total {
		t.Errorf("metrics tenant queries sum = %d, want %d", tenantQueries, total)
	}
	if snap.PlanCacheHits != int64(cs.Hits) || snap.PlanCacheMisses != int64(cs.Misses) {
		t.Errorf("metrics cache counters (%d/%d) disagree with cache stats %+v",
			snap.PlanCacheHits, snap.PlanCacheMisses, cs)
	}
	if snap.Activation.Count < total {
		t.Errorf("activation histogram count = %d, want >= %d", snap.Activation.Count, total)
	}

	// Cache-hit flags ride the query log: the newest records are hits.
	recs := e.db.RecentQueries(10)
	if len(recs) == 0 {
		t.Fatal("no run records after 1000 executions")
	}
	hits := 0
	for _, r := range recs {
		if r.CacheHit {
			hits++
		}
		if r.Tenant == "" {
			t.Errorf("run record missing tenant: %+v", r)
		}
	}
	if hits == 0 {
		t.Error("no recent run record carries the cache-hit flag")
	}
}

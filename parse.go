package dynplan

import (
	"fmt"

	"dynplan/internal/sqlish"
)

// Parse compiles a SQL-ish statement against the system's catalog:
//
//	SELECT * FROM emp, dept
//	WHERE emp.salary <= ?limit AND emp.dept = dept.id
//	ORDER BY dept.id
//
// Range predicates take a host variable ("?limit", bound at start-up) or
// a numeric literal (whose selectivity is derived from the attribute's
// domain). ORDER BY requires the final plan to deliver that sort order
// (through the Sort enforcer when no access path provides it). The
// projection list, if not '*', is applied to execution results.
func (s *System) Parse(query string) (*Query, error) {
	st, err := sqlish.Parse(query)
	if err != nil {
		return nil, err
	}

	spec := QuerySpec{}
	relIndex := make(map[string]int)
	for _, name := range st.Relations {
		if _, dup := relIndex[name]; dup {
			return nil, fmt.Errorf("dynplan: relation %q listed twice in FROM (self joins are not supported)", name)
		}
		relIndex[name] = len(spec.Relations)
		spec.Relations = append(spec.Relations, RelSpec{Name: name})
	}

	checkCol := func(c sqlish.Column) error {
		i, ok := relIndex[c.Rel]
		if !ok {
			return fmt.Errorf("dynplan: column %s references a relation not in FROM", c)
		}
		rel, err := s.cat.Relation(spec.Relations[i].Name)
		if err != nil {
			return err
		}
		if _, err := rel.Attribute(c.Attr); err != nil {
			return err
		}
		return nil
	}

	for _, sel := range st.Selections {
		if err := checkCol(sel.Col); err != nil {
			return nil, err
		}
		i := relIndex[sel.Col.Rel]
		if spec.Relations[i].Pred != nil {
			return nil, fmt.Errorf("dynplan: relation %q has more than one selection predicate (one per relation, as in the paper's prototype)", sel.Col.Rel)
		}
		pred := &Pred{Attr: sel.Col.Attr}
		if sel.Variable != "" {
			pred.Variable = sel.Variable
		} else {
			rel := s.cat.MustRelation(sel.Col.Rel)
			attr := rel.MustAttribute(sel.Col.Attr)
			selectivity := sel.Literal / float64(attr.DomainSize)
			if selectivity <= 0 {
				return nil, fmt.Errorf("dynplan: literal predicate %s <= %g selects nothing", sel.Col, sel.Literal)
			}
			if selectivity > 1 {
				selectivity = 1
			}
			pred.Selectivity = selectivity
		}
		spec.Relations[i].Pred = pred
	}

	for _, j := range st.Joins {
		if err := checkCol(j.Left); err != nil {
			return nil, err
		}
		if err := checkCol(j.Right); err != nil {
			return nil, err
		}
		spec.Joins = append(spec.Joins, JoinSpec{
			LeftRel: j.Left.Rel, LeftAttr: j.Left.Attr,
			RightRel: j.Right.Rel, RightAttr: j.Right.Attr,
		})
	}

	q, err := s.BuildQuery(spec)
	if err != nil {
		return nil, err
	}
	if st.OrderBy != nil {
		if err := checkCol(*st.OrderBy); err != nil {
			return nil, err
		}
		q.orderBy = st.OrderBy.String()
	}
	for _, c := range st.Columns {
		if err := checkCol(c); err != nil {
			return nil, err
		}
		q.projection = append(q.projection, c.String())
	}
	return q, nil
}

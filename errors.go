package dynplan

import "dynplan/internal/qerr"

// Typed execution errors. Every mid-query failure the engine produces
// wraps exactly one of these sentinels (match with errors.Is), so callers
// can distinguish cancellation from retryable resource failures from
// unrecoverable faults. The retrying fallback executor (ExecuteResilient)
// consumes the same taxonomy.
var (
	// ErrCanceled reports that the caller's context was canceled
	// mid-query; the error also wraps context.Canceled.
	ErrCanceled = qerr.ErrCanceled
	// ErrDeadlineExceeded reports that the caller's deadline passed
	// mid-query; the error also wraps context.DeadlineExceeded.
	ErrDeadlineExceeded = qerr.ErrDeadlineExceeded
	// ErrInsufficientMemory reports that the memory grant shrank below
	// what a memory-hungry operator (hash-join build, sort) needs.
	ErrInsufficientMemory = qerr.ErrInsufficientMemory
	// ErrTransientIO reports a page read that failed transiently;
	// reissuing the read is expected to succeed.
	ErrTransientIO = qerr.ErrTransientIO
	// ErrPermanentIO reports an unrecoverable page-read failure.
	ErrPermanentIO = qerr.ErrPermanentIO
	// ErrFaultInjected additionally marks every failure produced by the
	// fault-injection substrate (see Database.InjectFaults).
	ErrFaultInjected = qerr.ErrFaultInjected
	// ErrOperatorPanic reports an operator panic converted to an error at
	// the executor boundary.
	ErrOperatorPanic = qerr.ErrOperatorPanic
	// ErrAdmission reports that the resource governor refused the query —
	// the admission queue was full, or the wait for an execution slot or a
	// memory grant timed out. The query never started; resubmitting under
	// lighter load is expected to succeed.
	ErrAdmission = qerr.ErrAdmission
	// ErrCircuitOpen reports that open per-relation circuit breakers
	// excluded every alternative of the plan, so resilient execution failed
	// fast rather than re-probing a poisoned access path.
	ErrCircuitOpen = qerr.ErrCircuitOpen
	// ErrCardinalityViolation reports that a mid-query cardinality guard
	// observed a materialized row count outside the cost model's predicted
	// band. With a ReoptPolicy active it is remedied mid-flight and never
	// surfaces; without one it fails the query, typed.
	ErrCardinalityViolation = qerr.ErrCardinalityViolation
	// ErrNoProgress reports that the progress watchdog observed no tuples
	// advancing for longer than ReoptPolicy.NoProgressTimeout: the query
	// was stuck, not slow.
	ErrNoProgress = qerr.ErrNoProgress
)

// IsRetryable reports whether re-executing can plausibly succeed:
// transient I/O failures (retry the same plan) and insufficient memory
// (retry an alternative branch under a downgraded grant).
func IsRetryable(err error) bool { return qerr.Retryable(err) }

// IsCanceled reports whether the error stems from context cancellation or
// deadline expiry, directly or wrapped.
func IsCanceled(err error) bool { return qerr.Canceled(err) }

// FailedOperator returns the plan operator a failure was raised at
// ("Hash-Join R1.jh = R2.jl", "File-Scan R2", …), or "" when the error
// carries no operator — cancellation, for example, is a property of the
// whole execution, never of one operator.
func FailedOperator(err error) string { return qerr.Operator(err) }

// FailedRelation returns the base relation a failure was raised at, or ""
// when the error carries none. The resilient executor uses the same
// attribution to charge per-relation circuit breakers.
func FailedRelation(err error) string { return qerr.Relation(err) }
